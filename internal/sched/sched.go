// Package sched assigns wall-clock timing to layered circuits and extracts
// the jointly-idle windows that the CA-DD pass decorates (paper Algorithm 1,
// function CollectJointDelays): idle periods are collected into groups that
// overlap in time and are adjacent on the crosstalk graph, then recursively
// split at the window holding the largest number of jointly idling qubits.
package sched

import (
	"math"
	"sort"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/qgraph"
)

// LayerDuration computes the duration of a layer on the given device:
// twirl layers are free (merged into neighboring 1q gates), 1q layers cost
// one 1q gate time, 2q layers cost the ECR duration (or the longest explicit
// delay if they contain only delays), and measurement layers cost the
// measurement time plus the feed-forward latency when conditional gates are
// present downstream of the measurement.
func LayerDuration(l *circuit.Layer, d *device.Device) float64 {
	switch l.Kind {
	case circuit.TwirlLayer:
		return 0
	case circuit.OneQubitLayer:
		dur := 0.0
		hasGate := false
		for _, in := range l.Instrs {
			if in.Gate == gates.Delay {
				if len(in.Params) > 0 && in.Params[0] > dur {
					dur = in.Params[0]
				}
				continue
			}
			// RZ is a virtual frame update (zero duration, zero cost); a
			// layer holding only RZ corrections is free.
			if in.Gate != gates.RZ && in.Gate != gates.ID {
				hasGate = true
			}
			if in.Cond != nil && in.Gate != gates.RZ {
				// Conditional physical gates execute after the feed-forward
				// offset encoded in Time; conditional virtual Rz corrections
				// are free.
				if t := in.Time + d.Dur1Q; t > dur {
					dur = t
				}
			}
		}
		if hasGate && dur < d.Dur1Q {
			dur = d.Dur1Q
		}
		return dur
	case circuit.TwoQubitLayer:
		dur := 0.0
		for _, in := range l.Instrs {
			g := 0.0
			switch {
			case in.Gate == gates.Ucan, in.Gate == gates.SWAP:
				// A canonical gate compiles to 3 CNOT/ECR blocks plus
				// interleaved 1q gates (paper Fig. 1d); a routing SWAP is
				// likewise 3 CNOTs.
				g = 3*d.DurECR + 2*d.Dur1Q
			case in.Gate == gates.RZZ:
				// Pulse-stretched native RZZ (paper Sec. IV B): duration
				// scales with the rotation angle, never exceeding an ECR.
				frac := math.Abs(in.Params[0]) / (math.Pi / 2)
				if frac > 1 {
					frac = 1
				}
				g = d.DurECR * frac
				if g < d.Dur1Q {
					g = d.Dur1Q
				}
			case gates.NumQubits(in.Gate) == 2:
				g = d.DurECR
			case in.Gate == gates.Delay && len(in.Params) > 0:
				g = in.Params[0]
			}
			if g > dur {
				dur = g
			}
		}
		return dur
	case circuit.MeasureLayer:
		return d.DurMeas
	}
	return 0
}

// Schedule assigns Start and Duration to every layer in place (ASAP,
// layer-synchronous). It returns the total circuit duration.
func Schedule(c *circuit.Circuit, d *device.Device) float64 {
	t := 0.0
	for i := range c.Layers {
		l := &c.Layers[i]
		l.Start = t
		l.Duration = LayerDuration(l, d)
		t += l.Duration
	}
	return t
}

// IdleRun is a maximal contiguous interval during which one qubit receives
// no real gate (delays do not interrupt a run; any other instruction,
// including twirl Paulis and DD pulses, does).
type IdleRun struct {
	Qubit      int
	Start, End float64
}

// Duration returns the run length.
func (r IdleRun) Duration() float64 { return r.End - r.Start }

// IdleRuns scans a scheduled circuit and returns all idle runs with
// duration >= minDur, sorted by (qubit, start).
func IdleRuns(c *circuit.Circuit, minDur float64) []IdleRun {
	type state struct {
		open  bool
		start float64
	}
	st := make([]state, c.NQubits)
	var runs []IdleRun
	closeRun := func(q int, end float64) {
		if st[q].open && end-st[q].start >= minDur && end > st[q].start {
			runs = append(runs, IdleRun{Qubit: q, Start: st[q].start, End: end})
		}
		st[q].open = false
	}
	for li := range c.Layers {
		l := &c.Layers[li]
		active := l.ActiveQubits()
		for q := 0; q < c.NQubits; q++ {
			if active[q] {
				closeRun(q, l.Start)
				continue
			}
			if !st[q].open && l.Duration > 0 {
				st[q].open = true
				st[q].start = l.Start
			}
		}
	}
	end := c.TotalDuration()
	for q := 0; q < c.NQubits; q++ {
		closeRun(q, end)
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Qubit != runs[j].Qubit {
			return runs[i].Qubit < runs[j].Qubit
		}
		return runs[i].Start < runs[j].Start
	})
	return runs
}

// Window is a set of qubits jointly idle over [Start, End] — the unit the
// DD pass colors and decorates.
type Window struct {
	Qubits     []int
	Start, End float64
}

// Duration returns the window length.
func (w Window) Duration() float64 { return w.End - w.Start }

func overlap(a, b IdleRun) bool { return a.Start < b.End && b.Start < a.End }

// groupRuns greedily collects runs that overlap in time and whose qubits are
// adjacent on g into connected groups (Algorithm 1, line 8).
func groupRuns(runs []IdleRun, g *qgraph.Graph) [][]IdleRun {
	n := len(runs)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !overlap(runs[i], runs[j]) {
				continue
			}
			qi, qj := runs[i].Qubit, runs[j].Qubit
			if qi == qj || g.HasEdge(qi, qj) {
				union(i, j)
			}
		}
	}
	byRoot := map[int][]IdleRun{}
	var roots []int
	for i, r := range runs {
		root := find(i)
		if _, ok := byRoot[root]; !ok {
			roots = append(roots, root)
		}
		byRoot[root] = append(byRoot[root], r)
	}
	sort.Ints(roots)
	var out [][]IdleRun
	for _, root := range roots {
		out = append(out, byRoot[root])
	}
	return out
}

// splitGroup recursively extracts windows from a group: it finds the
// elementary time interval combination with the largest number of jointly
// idle qubits (ties broken by duration), emits it as a window, clips the
// remaining run pieces, and recurses (Algorithm 1, lines 10-18).
func splitGroup(group []IdleRun, minDur float64, out *[]Window) {
	if len(group) == 0 {
		return
	}
	// Elementary boundaries.
	bset := map[float64]bool{}
	for _, r := range group {
		bset[r.Start] = true
		bset[r.End] = true
	}
	bounds := make([]float64, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	type cell struct {
		start, end float64
		qubits     []int
	}
	var cells []cell
	for i := 0; i+1 < len(bounds); i++ {
		mid := (bounds[i] + bounds[i+1]) / 2
		var qs []int
		for _, r := range group {
			if r.Start <= mid && mid < r.End {
				qs = append(qs, r.Qubit)
			}
		}
		if len(qs) > 0 {
			sort.Ints(qs)
			cells = append(cells, cell{bounds[i], bounds[i+1], qs})
		}
	}
	if len(cells) == 0 {
		return
	}
	// Merge adjacent cells with identical qubit sets.
	merged := []cell{cells[0]}
	for _, c := range cells[1:] {
		last := &merged[len(merged)-1]
		if c.start == last.end && equalInts(c.qubits, last.qubits) {
			last.end = c.end
			continue
		}
		merged = append(merged, c)
	}
	// Pick the best window: most qubits, then longest.
	best := 0
	for i, c := range merged[1:] {
		b := merged[best]
		if len(c.qubits) > len(b.qubits) ||
			(len(c.qubits) == len(b.qubits) && c.end-c.start > b.end-b.start) {
			best = i + 1
		}
	}
	w := merged[best]
	if w.end-w.start >= minDur {
		*out = append(*out, Window{Qubits: w.qubits, Start: w.start, End: w.end})
	}
	// Split remaining run pieces strictly before/after the chosen window and
	// recurse on each side.
	var before, after []IdleRun
	for _, r := range group {
		if r.Start < w.start {
			e := r.End
			if e > w.start {
				e = w.start
			}
			if e-r.Start >= minDur {
				before = append(before, IdleRun{r.Qubit, r.Start, e})
			}
		}
		if r.End > w.end {
			s := r.Start
			if s < w.end {
				s = w.end
			}
			if r.End-s >= minDur {
				after = append(after, IdleRun{r.Qubit, s, r.End})
			}
		}
	}
	splitGroup(before, minDur, out)
	splitGroup(after, minDur, out)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CollectJointDelays implements Algorithm 1's CollectJointDelays: it
// extracts idle runs of at least minDur, groups them by crosstalk adjacency
// and temporal overlap, and recursively splits each group into windows of
// jointly idle qubits. Windows are returned sorted by start time.
func CollectJointDelays(c *circuit.Circuit, g *qgraph.Graph, minDur float64) []Window {
	runs := IdleRuns(c, minDur)
	var out []Window
	for _, grp := range groupRuns(runs, g) {
		splitGroup(grp, minDur, &out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// LayerAt returns the index of the layer whose half-open interval
// [Start, Start+Duration) contains time t, preferring layers with positive
// duration; -1 if none.
func LayerAt(c *circuit.Circuit, t float64) int {
	for i := range c.Layers {
		l := &c.Layers[i]
		if l.Duration <= 0 {
			continue
		}
		if t >= l.Start && t < l.Start+l.Duration {
			return i
		}
	}
	// A pulse exactly at the very end of the circuit belongs to the last
	// timed layer.
	for i := len(c.Layers) - 1; i >= 0; i-- {
		l := &c.Layers[i]
		if l.Duration > 0 && t >= l.Start && t <= l.Start+l.Duration {
			return i
		}
	}
	return -1
}
