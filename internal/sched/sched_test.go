package sched

import (
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
)

func dev4() *device.Device {
	return device.NewLine("sched", 4, device.DefaultOptions())
}

func TestScheduleDurations(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 1)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwirlLayer).X(1)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	total := Schedule(c, d)

	if c.Layers[0].Duration != d.Dur1Q {
		t.Errorf("1q layer duration %v", c.Layers[0].Duration)
	}
	if c.Layers[1].Duration != 0 {
		t.Error("twirl layer must be free")
	}
	if c.Layers[2].Duration != d.DurECR {
		t.Errorf("2q layer duration %v", c.Layers[2].Duration)
	}
	if c.Layers[3].Duration != d.DurMeas {
		t.Errorf("measure layer duration %v", c.Layers[3].Duration)
	}
	if total != d.Dur1Q+d.DurECR+d.DurMeas {
		t.Errorf("total %v", total)
	}
	// Starts are cumulative.
	if c.Layers[2].Start != d.Dur1Q {
		t.Errorf("layer 2 start %v", c.Layers[2].Start)
	}
}

func TestVirtualRZLayerIsFree(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).RZ(0, 0.3).RZ(2, -0.1)
	Schedule(c, d)
	if c.Layers[0].Duration != 0 {
		t.Errorf("virtual-Rz-only layer must have zero duration, got %v", c.Layers[0].Duration)
	}
}

func TestRZZStretchDuration(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.TwoQubitLayer).RZZ(0, 1, 0.785398) // pi/4: half stretch
	Schedule(c, d)
	got := c.Layers[0].Duration
	want := d.DurECR / 2
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("RZZ(pi/4) duration %v, want ~%v", got, want)
	}
	// Full pi/2 angle costs a full ECR.
	c2 := circuit.New(4, 0)
	c2.AddLayer(circuit.TwoQubitLayer).RZZ(0, 1, 1.5707963)
	Schedule(c2, d)
	if c2.Layers[0].Duration < d.DurECR*0.99 {
		t.Error("RZZ(pi/2) should cost a full ECR duration")
	}
}

func TestUcanDuration(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.TwoQubitLayer).Ucan(0, 1, 0.1, 0.1, 0.1)
	Schedule(c, d)
	want := 3*d.DurECR + 2*d.Dur1Q
	if c.Layers[0].Duration != want {
		t.Errorf("Ucan duration %v, want %v (3 CNOT blocks)", c.Layers[0].Duration, want)
	}
}

func TestConditionalGateExtendsLayer(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 1)
	ff := c.AddLayer(circuit.OneQubitLayer)
	ff.Add(circuit.Instruction{Gate: gates.XGate, Qubits: []int{0},
		Cond: &circuit.Condition{Bit: 0, Value: 1}, Time: 1000})
	Schedule(c, d)
	if c.Layers[0].Duration != 1000+d.Dur1Q {
		t.Errorf("feed-forward layer duration %v", c.Layers[0].Duration)
	}
	// Conditional virtual Rz must not extend the layer.
	c2 := circuit.New(4, 1)
	c2.AddLayer(circuit.OneQubitLayer).CondRZ(0, 0.5, 0, 1)
	Schedule(c2, d)
	if c2.Layers[0].Duration != 0 {
		t.Errorf("conditional virtual Rz layer duration %v", c2.Layers[0].Duration)
	}
}

func TestIdleRuns(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(1).H(2).H(3)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1) // 2,3 idle
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1) // 2,3 idle again (merged run)
	Schedule(c, d)
	runs := IdleRuns(c, 100)
	// Qubits 2 and 3 idle from the end of the prep layer to circuit end.
	if len(runs) != 2 {
		t.Fatalf("runs: %+v", runs)
	}
	for _, r := range runs {
		if r.Qubit != 2 && r.Qubit != 3 {
			t.Errorf("unexpected idle qubit %d", r.Qubit)
		}
		if r.Duration() != 2*d.DurECR {
			t.Errorf("run duration %v, want %v", r.Duration(), 2*d.DurECR)
		}
	}
}

func TestIdleRunsInterruptedByGate(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1) // 2,3 idle
	c.AddLayer(circuit.OneQubitLayer).X(2)      // interrupts qubit 2
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1) // 2,3 idle
	Schedule(c, d)
	runs := IdleRuns(c, 100)
	count2 := 0
	for _, r := range runs {
		if r.Qubit == 2 {
			count2++
		}
	}
	if count2 != 2 {
		t.Errorf("qubit 2 should have 2 separate runs, got %d (%+v)", count2, runs)
	}
}

func TestCollectJointDelaysGroupsAdjacent(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	for q := 0; q < 4; q++ {
		l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{q}, Params: []float64{500}})
	}
	Schedule(c, d)
	ws := CollectJointDelays(c, d.CrosstalkGraph(), 100)
	if len(ws) != 1 {
		t.Fatalf("windows: %+v", ws)
	}
	if len(ws[0].Qubits) != 4 {
		t.Errorf("joint window should cover all 4 qubits: %+v", ws[0])
	}
}

func TestCollectJointDelaysSplitsStaggered(t *testing.T) {
	// Qubit 0 idles for two layers, qubit 1 only for the second: the split
	// should produce a 2-qubit window plus a residual 1-qubit window.
	d := dev4()
	c := circuit.New(4, 0)
	l1 := c.AddLayer(circuit.TwoQubitLayer)
	l1.ECR(1, 2)
	l1.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{500}})
	l2 := c.AddLayer(circuit.TwoQubitLayer)
	l2.ECR(2, 3)
	Schedule(c, d)
	ws := CollectJointDelays(c, d.CrosstalkGraph(), 100)
	var joint, solo int
	for _, w := range ws {
		switch len(w.Qubits) {
		case 2:
			joint++
		case 1:
			solo++
		}
	}
	if joint != 1 {
		t.Errorf("expected one 2-qubit window, got windows %+v", ws)
	}
	if solo < 1 {
		t.Errorf("expected residual 1-qubit window, got %+v", ws)
	}
}

func TestLayerAt(t *testing.T) {
	d := dev4()
	c := circuit.New(4, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	Schedule(c, d)
	if li := LayerAt(c, d.Dur1Q+1); li != 1 {
		t.Errorf("LayerAt inside 2q layer = %d", li)
	}
	if li := LayerAt(c, 0); li != 0 {
		t.Errorf("LayerAt(0) = %d", li)
	}
	end := c.TotalDuration()
	if li := LayerAt(c, end); li != 1 {
		t.Errorf("LayerAt(end) = %d", li)
	}
	if li := LayerAt(c, end+100); li != -1 {
		t.Errorf("LayerAt beyond end = %d", li)
	}
}
