package sim_test

import (
	"math"
	"testing"

	"casq/internal/circuit"
	"casq/internal/dd"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/linalg"
	"casq/internal/sched"
	"casq/internal/sim"
	"casq/internal/toggling"
)

// quietDevice builds a line device with only coherent crosstalk (all
// stochastic channels zeroed) and perfect rotary suppression, for exact
// physics checks.
func quietDevice(n int) *device.Device {
	opts := device.DefaultOptions()
	opts.DeltaMax = 0
	opts.QuasistaticSigma = 0
	opts.Err1Q = 0
	opts.Err2Q = 0
	opts.ReadoutErr = 0
	opts.T1Min, opts.T1Max = 1e12, 1e12
	opts.T2Factor = 2.0
	opts.RotaryResidual = 0
	// Make 1q layers effectively instantaneous so per-layer error algebra
	// is exact in the tests below (real devices use ~60 ns; the finite
	// value only adds small extra idle phases).
	opts.Dur1Q = 1e-6
	return device.NewLine("quiet", n, opts)
}

func coherentCfg() sim.Config {
	c := sim.CoherentOnly(1)
	c.Workers = 1
	return c
}

func TestIdealBellCounts(t *testing.T) {
	dev := quietDevice(2)
	c := circuit.New(2, 2)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0).Measure(1, 1)
	sched.Schedule(c, dev)

	cfg := sim.Ideal()
	cfg.Shots = 400
	cfg.Seed = 3
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	p00 := res.Probability("00")
	p11 := res.Probability("11")
	if math.Abs(p00-0.5) > 0.1 || math.Abs(p11-0.5) > 0.1 {
		t.Errorf("Bell counts wrong: p00=%.3f p11=%.3f", p00, p11)
	}
	if res.Probability("01")+res.Probability("10") > 0 {
		t.Errorf("ideal Bell produced odd-parity outcomes")
	}
}

func TestECRMatchesIdealUnitary(t *testing.T) {
	// With all noise off, executing an ECR through the event sequence must
	// reproduce the ideal ECR matrix acting on any basis state.
	dev := quietDevice(2)
	for b := 0; b < 4; b++ {
		c := circuit.New(2, 0)
		prep := c.AddLayer(circuit.OneQubitLayer)
		if b&1 != 0 {
			prep.X(0)
		}
		if b&2 != 0 {
			prep.X(1)
		}
		c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
		sched.Schedule(c, dev)

		r := sim.New(dev, sim.Ideal())
		got, err := r.FinalState(c)
		if err != nil {
			t.Fatal(err)
		}
		want := linalg.NewVector(2)
		want[0] = 0
		want[b] = 1
		want.Apply2Q(gates.ECRMatrix(), 0, 1)
		if f := linalg.FidelityPure(got, want); f < 1-1e-9 {
			t.Errorf("basis %02b: ECR fidelity %.6f", b, f)
		}
	}
}

func TestIdlePairMatchesU11(t *testing.T) {
	// Two idle neighbors for time tau must evolve under
	// U11 = Rzz(theta) [Rz(-theta) x Rz(-theta)], theta = 2 pi nu tau
	// (paper Eq. 2).
	dev := quietDevice(2)
	tau := 500.0
	c := circuit.New(2, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(1)
	idle := c.AddLayer(circuit.TwoQubitLayer)
	idle.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{tau}})
	idle.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{tau}})
	sched.Schedule(c, dev)

	r := sim.New(dev, coherentCfg())
	got, err := r.FinalState(c)
	if err != nil {
		t.Fatal(err)
	}

	theta := 2 * math.Pi * dev.ZZRate(0, 1) * tau * 1e-9
	want := linalg.NewVector(2)
	want.Apply1Q(gates.Matrix1Q(gates.H), 0)
	want.Apply1Q(gates.Matrix1Q(gates.H), 1)
	// The 1q layer itself has duration Dur1Q during which crosstalk also
	// acts; account for it in the expected angle.
	thetaPrep := 2 * math.Pi * dev.ZZRate(0, 1) * dev.Dur1Q * 1e-9
	tot := theta + thetaPrep
	want.Apply2Q(gates.Matrix2Q(gates.RZZ, tot), 0, 1)
	want.Apply1Q(gates.Matrix1Q(gates.RZ, -tot), 0)
	want.Apply1Q(gates.Matrix1Q(gates.RZ, -tot), 1)

	if f := linalg.FidelityPure(got, want); f < 1-1e-9 {
		t.Errorf("idle pair does not match U11: fidelity %.9f", f)
	}
	// Sanity: the state must have moved away from |++>.
	plus := linalg.NewVector(2)
	plus.Apply1Q(gates.Matrix1Q(gates.H), 0)
	plus.Apply1Q(gates.Matrix1Q(gates.H), 1)
	if f := linalg.FidelityPure(got, plus); f > 0.99 {
		t.Errorf("no coherent error accumulated (fidelity to |++> = %.4f)", f)
	}
}

func TestTogglingPredictsSimulator(t *testing.T) {
	// For an arbitrary pulse arrangement, the simulator's final state must
	// equal the ideal pulse circuit followed by the toggling-frame error
	// unitary. This pins the suffix-sign convention shared by sim and CA-EC.
	dev := quietDevice(4)
	build := func() *circuit.Circuit {
		c := circuit.New(4, 0)
		prep := c.AddLayer(circuit.OneQubitLayer)
		prep.H(0).H(1).H(2).H(3)
		l := c.AddLayer(circuit.TwoQubitLayer)
		l.ECR(0, 1)
		// Asymmetric DD pulses on the idle qubits 2 and 3.
		l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{2}, Tag: "dd", Time: 125})
		l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{2}, Tag: "dd", Time: 300})
		l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{3}, Tag: "dd", Time: 250})
		l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{3}, Tag: "dd", Time: 500})
		return c
	}

	noisy := build()
	sched.Schedule(noisy, dev)
	r := sim.New(dev, coherentCfg())
	got, err := r.FinalState(noisy)
	if err != nil {
		t.Fatal(err)
	}

	ideal := build()
	sched.Schedule(ideal, dev)
	ri := sim.New(dev, sim.Ideal())
	want, err := ri.FinalState(ideal)
	if err != nil {
		t.Fatal(err)
	}
	// Apply the predicted error for each layer (prep layer + gate layer).
	for li := range ideal.Layers {
		m := toggling.BuildLayerModel(&ideal.Layers[li], dev)
		res := toggling.Integrate(m, dev, true)
		for q, phi := range res.PhiZ {
			want.Apply1Q(gates.Matrix1Q(gates.RZ, phi), q)
		}
		for e, phi := range res.PhiZZ {
			want.Apply2Q(gates.Matrix2Q(gates.RZZ, phi), e.A, e.B)
		}
	}
	if f := linalg.FidelityPure(got, want); f < 1-1e-9 {
		t.Fatalf("toggling prediction mismatch: fidelity %.9f", f)
	}
}

// ramseyFidelity runs a case-I style Ramsey: |++> on (0,1), idle for d
// layers of tau each, return fidelity to |++>.
func ramseyFidelity(t *testing.T, dev *device.Device, d int, strategy dd.Strategy) float64 {
	t.Helper()
	tau := 500.0
	c := circuit.New(2, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(1)
	for i := 0; i < d; i++ {
		l := c.AddLayer(circuit.TwoQubitLayer)
		l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{tau}})
		l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{tau}})
	}
	sched.Schedule(c, dev)
	if strategy != dd.None {
		opts := dd.DefaultOptions()
		opts.Strategy = strategy
		if _, err := dd.Insert(c, dev, opts); err != nil {
			t.Fatal(err)
		}
	}
	r := sim.New(dev, coherentCfg())
	st, err := r.FinalState(c)
	if err != nil {
		t.Fatal(err)
	}
	plus := linalg.NewVector(2)
	plus.Apply1Q(gates.Matrix1Q(gates.H), 0)
	plus.Apply1Q(gates.Matrix1Q(gates.H), 1)
	return linalg.FidelityPure(st, plus)
}

func TestDDSuppressionCaseI(t *testing.T) {
	dev := quietDevice(2)
	d := 8
	bare := ramseyFidelity(t, dev, d, dd.None)
	aligned := ramseyFidelity(t, dev, d, dd.Aligned)
	staggered := ramseyFidelity(t, dev, d, dd.Staggered)
	ca := ramseyFidelity(t, dev, d, dd.ContextAware)

	if bare > 0.9 {
		t.Errorf("bare Ramsey should have decayed, got %.4f", bare)
	}
	// Aligned DD cancels the single-qubit Z but not the ZZ (paper Fig. 3c):
	// it must beat bare but stay clearly below the staggered strategies.
	if aligned < bare-0.05 {
		t.Errorf("aligned DD (%.4f) should not be worse than bare (%.4f)", aligned, bare)
	}
	if staggered < 0.999 {
		t.Errorf("staggered DD should fully cancel coherent idle errors, got %.6f", staggered)
	}
	if ca < 0.999 {
		t.Errorf("CA-DD should fully cancel coherent idle errors, got %.6f", ca)
	}
	if aligned > 0.99 {
		t.Errorf("aligned DD unexpectedly suppressed ZZ (%.4f); staggering should matter", aligned)
	}
}

func TestControlSpectatorEcho(t *testing.T) {
	// Case II (paper Fig. 3d): a spectator adjacent to an ECR control.
	// The gate echo alone cancels ZZ(ctrl, spec); context-aware pulses at
	// T/4, 3T/4 keep it cancelled and also remove the spectator Z; aligned
	// pulses at T/2, T undo the echo and reintroduce the ZZ error.
	dev := quietDevice(3) // line 0-1-2, ECR direction 0->1 on edge (0,1)
	dev.Stark = map[device.Directed]float64{}

	build := func(pulses []float64) *circuit.Circuit {
		c := circuit.New(3, 0)
		// Spectator is qubit 2? No: control of ECR(0,1) is 0; its neighbor
		// on the line is 1 (the target). Use ECR(1,2) instead: control 1,
		// target 2, spectator 0 adjacent to control 1.
		c.AddLayer(circuit.OneQubitLayer).H(0)
		l := c.AddLayer(circuit.TwoQubitLayer)
		l.ECR(1, 2)
		for _, p := range pulses {
			l.Add(circuit.Instruction{Gate: gates.XDD, Qubits: []int{0}, Tag: "dd", Time: p})
		}
		return c
	}
	run := func(pulses []float64) float64 {
		c := build(pulses)
		sched.Schedule(c, dev)
		r := sim.New(dev, coherentCfg())
		st, err := r.FinalState(c)
		if err != nil {
			t.Fatal(err)
		}
		plus := linalg.NewVector(3)
		plus.Apply1Q(gates.Matrix1Q(gates.H), 0)
		// Project onto the spectator's |+> regardless of gate qubits:
		// measure <X0>.
		x0 := st.Copy()
		x0.Apply1Q(gates.Matrix1Q(gates.XGate), 0)
		return real(linalg.Inner(st, x0))
	}
	T := dev.DurECR
	none := run(nil)
	caPulses := run([]float64{T / 4, 3 * T / 4})
	alignedPulses := run([]float64{T / 2, T})

	// With no DD: ZZ echoed away, but the spectator keeps its Z error, so
	// <X0> rotates away from 1 (by the -nu/2 Z of Eq. 1 plus prep-layer
	// effects).
	if none > 0.995 {
		t.Errorf("no-DD spectator unexpectedly clean: <X0>=%.4f", none)
	}
	if caPulses < 0.9999 {
		t.Errorf("CA-aligned pulses (T/4, 3T/4) should fully protect the spectator, got %.6f", caPulses)
	}
	if alignedPulses > caPulses-1e-6 {
		t.Errorf("echo-aligned pulses (T/2, T) should be worse than staggered: %.6f vs %.6f", alignedPulses, caPulses)
	}
}

func TestMidCircuitMeasurementAndFeedForward(t *testing.T) {
	// |+> on q0, CX(0,1), measure q1, conditional X on q0 must yield a
	// deterministic |1> on q0... actually X|0/1> conditioned on the measured
	// bit maps the post-measurement state of q0 to |1> when outcome=0 is
	// corrected with X too. Simpler deterministic check: measure q1 then
	// conditionally flip q0 so that q0 always ends in |1>.
	dev := quietDevice(2)
	// Remove coherent noise entirely for a pure logic check.
	for e := range dev.ZZ {
		dev.ZZ[e] = 0
	}
	dev.Stark = map[device.Directed]float64{}

	c := circuit.New(2, 2)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	c.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
	c.AddLayer(circuit.MeasureLayer).Measure(1, 0)
	ff := c.AddLayer(circuit.OneQubitLayer)
	ff.CondX(0, 0, 0) // flip q0 when the aux measured 0
	c.AddLayer(circuit.MeasureLayer).Measure(0, 1)
	sched.Schedule(c, dev)

	cfg := sim.Ideal()
	cfg.Shots = 200
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	// After CX, q0 and q1 agree; flipping q0 when q1==0 forces q0 = 1.
	if p := res.Probability("x1"); p < 0.999 {
		t.Errorf("feed-forward failed: P(q0=1) = %.4f, counts=%v", p, res.Counts)
	}
}

// TestPureDephasingWithT1Disabled is the regression test for the T1=0
// divide-by-zero: with amplitude damping disabled (T1 <= 0) the pure
// dephasing rate must reduce to 1/Tphi = 1/T2 instead of silently becoming
// -Inf and skipping dephasing on T2-only devices.
func TestPureDephasingWithT1Disabled(t *testing.T) {
	dev := quietDevice(1)
	dev.T1 = []float64{0}    // damping disabled
	dev.T2 = []float64{1000} // pure dephasing only
	for e := range dev.ZZ {
		dev.ZZ[e] = 0
	}
	dur := 2000.0
	c := circuit.New(1, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{dur}})
	sched.Schedule(c, dev)

	cfg := sim.Config{Shots: 4000, Seed: 5, EnableT1T2: true}
	cfg.Workers = 1
	vals, err := sim.New(dev, cfg).Expectations(c, []sim.ObsSpec{{0: 'X'}})
	if err != nil {
		t.Fatal(err)
	}
	// Each shot flips Z with p = (1 - exp(-dur/T2))/2, so
	// <X> = exp(-dur/T2) ~ 0.135 in the mean. The old code returned 1.0.
	want := math.Exp(-dur / 1000.0)
	if math.Abs(vals[0]-want) > 0.05 {
		t.Errorf("T2-only dephasing off: <X> = %.4f, want ~%.4f", vals[0], want)
	}
}

// TestProbabilityLengthMismatch pins the pattern-matching contract in both
// directions: a constrained pattern position beyond the measured bitstring
// is a non-match (the old code silently ignored it), while measured bits
// beyond the pattern are unconstrained.
func TestProbabilityLengthMismatch(t *testing.T) {
	res := sim.Result{Counts: map[string]int{"01": 3, "11": 1}, Shots: 4}
	// Pattern longer than the bitstrings, constrained in the overflow:
	// nothing can match.
	if p := res.Probability("011"); p != 0 {
		t.Errorf("constrained position beyond bitstring matched: p = %v, want 0", p)
	}
	if p := res.Probability("xx1"); p != 0 {
		t.Errorf("constrained position beyond bitstring matched: p = %v, want 0", p)
	}
	// Pattern longer but unconstrained in the overflow: matches normally.
	if p := res.Probability("01xx"); p != 0.75 {
		t.Errorf("unconstrained overflow positions should match: p = %v, want 0.75", p)
	}
	// Pattern shorter than the bitstrings: extra measured bits are
	// unconstrained.
	if p := res.Probability("0"); p != 0.75 {
		t.Errorf("bits beyond pattern should be unconstrained: p = %v, want 0.75", p)
	}
	if p := res.Probability("x1"); p != 1 {
		t.Errorf("p = %v, want 1", p)
	}
	if p := res.Probability(""); p != 1 {
		t.Errorf("empty pattern should match everything: p = %v, want 1", p)
	}
}

func TestRelaxationDecaysExcitedState(t *testing.T) {
	dev := quietDevice(1)
	dev.T1 = []float64{1000} // 1 us in ns: strong decay over a long delay
	dev.T2 = []float64{800}
	c := circuit.New(1, 1)
	c.AddLayer(circuit.OneQubitLayer).X(0)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{2000}})
	c.AddLayer(circuit.MeasureLayer).Measure(0, 0)
	sched.Schedule(c, dev)

	cfg := sim.DefaultConfig()
	cfg.Shots = 600
	cfg.Seed = 11
	cfg.EnableZZ = false
	cfg.EnableStark = false
	cfg.EnableParity = false
	cfg.EnableQuasistatic = false
	cfg.EnableGateErr = false
	cfg.EnableReadoutErr = false
	r := sim.New(dev, cfg)
	res, err := r.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	p1 := res.Probability("1")
	want := math.Exp(-2000.0 / 1000.0) // ~0.135
	if math.Abs(p1-want) > 0.06 {
		t.Errorf("T1 decay off: got P(1)=%.3f want ~%.3f", p1, want)
	}
}
