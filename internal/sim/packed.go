package sim

import (
	"math/bits"

	"casq/internal/circuit"
)

// PackedBits is a bit-plane record of measured classical bits across a
// run's shots: plane c holds classical bit c of every shot, packed 64
// shots per word (shot s lives at word s/64, bit s%64). It is the native
// output format of a bit-plane engine — one word write records a bit for
// 64 shots — and the format downstream layers (exec counts merging, expval
// marginals) accumulate from without unpacking per shot.
type PackedBits struct {
	Shots  int
	Planes [][]uint64 // [classical bit][shot word]
}

// NewPackedBits returns an all-zero record for ncb classical bits over the
// given shot count.
func NewPackedBits(ncb, shots int) PackedBits {
	words := (shots + ShotBlockSize - 1) / ShotBlockSize
	planes := make([][]uint64, ncb)
	backing := make([]uint64, ncb*words)
	for c := range planes {
		planes[c] = backing[c*words : (c+1)*words]
	}
	return PackedBits{Shots: shots, Planes: planes}
}

// Set records classical bit c of shot s as v (0 or 1).
func (pb PackedBits) Set(c, s, v int) {
	w, b := s/ShotBlockSize, uint(s%ShotBlockSize)
	if v != 0 {
		pb.Planes[c][w] |= 1 << b
	} else {
		pb.Planes[c][w] &^= 1 << b
	}
}

// Bit returns classical bit c of shot s.
func (pb PackedBits) Bit(c, s int) int {
	w, b := s/ShotBlockSize, uint(s%ShotBlockSize)
	return int(pb.Planes[c][w]>>b) & 1
}

// tailMask returns the valid-bit mask of plane word w.
func (pb PackedBits) tailMask(w int) uint64 {
	if rem := pb.Shots - w*ShotBlockSize; rem < ShotBlockSize {
		return 1<<uint(rem) - 1
	}
	return ^uint64(0)
}

// Ones counts the shots whose classical bit c is 1 — one popcount per 64
// shots.
func (pb PackedBits) Ones(c int) int {
	n := 0
	for w, word := range pb.Planes[c] {
		n += bits.OnesCount64(word & pb.tailMask(w))
	}
	return n
}

// OnesXor counts the shots where classical bits a and b differ — the
// packed accumulator behind ZZ-type parity expectations.
func (pb PackedBits) OnesXor(a, b int) int {
	n := 0
	pa, pc := pb.Planes[a], pb.Planes[b]
	for w := range pa {
		n += bits.OnesCount64((pa[w] ^ pc[w]) & pb.tailMask(w))
	}
	return n
}

// OnesParity counts the shots whose XOR over the listed classical bits is
// 1 — the packed accumulator behind arbitrary Z-moment estimation
// (<prod Z_i> = 1 - 2*OnesParity/Shots). A bit index out of range
// contributes 0 to every shot's parity, mirroring the counts-map convention
// that an unrecorded bit reads 0.
func (pb PackedBits) OnesParity(cbits []int) int {
	n := 0
	words := 0
	if len(pb.Planes) > 0 {
		words = len(pb.Planes[0])
	} else {
		words = (pb.Shots + ShotBlockSize - 1) / ShotBlockSize
	}
	for w := 0; w < words; w++ {
		var par uint64
		for _, c := range cbits {
			if c >= 0 && c < len(pb.Planes) {
				par ^= pb.Planes[c][w]
			}
		}
		n += bits.OnesCount64(par & pb.tailMask(w))
	}
	return n
}

// Append returns a record holding pb's shots followed by other's — the
// instance-order concatenation the executor uses to accumulate per-instance
// packed outcomes into one job-wide record. Both records must have the same
// plane count; other's planes are shifted onto pb's tail so shot s of other
// becomes shot pb.Shots+s of the result.
func (pb PackedBits) Append(other PackedBits) PackedBits {
	out := NewPackedBits(len(pb.Planes), pb.Shots+other.Shots)
	base, off := pb.Shots/ShotBlockSize, uint(pb.Shots%ShotBlockSize)
	for c := range pb.Planes {
		dst := out.Planes[c]
		copy(dst, pb.Planes[c])
		if off != 0 {
			dst[base] &= 1<<off - 1 // scrub dirty bits beyond pb's tail
		}
		for w, word := range other.Planes[c] {
			word &= other.tailMask(w)
			dst[base+w] |= word << off
			if off != 0 {
				if hi := word >> (ShotBlockSize - off); hi != 0 {
					dst[base+w+1] |= hi
				}
			}
		}
	}
	return out
}

// CountsInto expands the planes into a bitstring-counts map (BitsKey
// layout: classical bit i at string position i), adding to any existing
// entries. The transpose touches each shot once; everything upstream of it
// stayed word-parallel.
func (pb PackedBits) CountsInto(m map[string]int) {
	scratch := make([]int, len(pb.Planes))
	for s := 0; s < pb.Shots; s++ {
		w, b := s/ShotBlockSize, uint(s%ShotBlockSize)
		for c := range pb.Planes {
			scratch[c] = int(pb.Planes[c][w]>>b) & 1
		}
		m[BitsKey(scratch)]++
	}
}

// Counts expands the planes into a fresh Result.
func (pb PackedBits) Counts() Result {
	res := Result{Counts: map[string]int{}, Shots: pb.Shots}
	pb.CountsInto(res.Counts)
	return res
}

// PackedSampler is the optional engine capability of producing measured
// bits as bit-planes. The executor prefers it for counts jobs so
// aggregation consumes packed outcome words instead of per-shot keys where
// the engine already has them packed.
type PackedSampler interface {
	CountsPacked(c *circuit.Circuit) (PackedBits, error)
}
