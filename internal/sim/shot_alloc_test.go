package sim

import (
	"testing"

	"casq/internal/device"
	"casq/internal/models"
	"casq/internal/sched"
)

var allocSink float64

// TestShotLoopZeroAlloc pins the tentpole's allocation contract: after a
// worker's one-time shot construction (and first-use observable scratch),
// the steady-state loop — reset, run every layer with all noise channels
// enabled, flush, evaluate observables — performs zero heap allocations.
func TestShotLoopZeroAlloc(t *testing.T) {
	dev := device.NewLine("alloc", 4, device.DefaultOptions())
	c := models.BuildFloquetIsing(4, 2)
	sched.Schedule(c, dev)
	cfg := DefaultConfig()
	cfg.Workers = 1
	r := New(dev, cfg)
	cp, err := r.compile(c)
	if err != nil {
		t.Fatal(err)
	}
	s := r.newShot(cp)
	planMixed := ObsSpec{0: 'X', 3: 'X'}.plan()
	planZ := ObsSpec{1: 'Z'}.plan()
	// Warm up: first eval sizes the observable scratch.
	s.reset(r.shotSeed(0))
	s.run(cp)
	s.flushAll()
	allocSink = planMixed.eval(s)

	shotIdx := 0
	allocs := testing.AllocsPerRun(50, func() {
		s.reset(r.shotSeed(shotIdx))
		shotIdx++
		s.run(cp)
		s.flushAll()
		allocSink = planMixed.eval(s)
		allocSink += planZ.eval(s)
	})
	if allocs != 0 {
		t.Errorf("steady-state shot loop allocates %.1f objects per shot, want 0", allocs)
	}
}

// TestCountsShotLoopZeroAllocWithMeasurement covers the sampling path:
// measurement, readout error, and classical bits also stay allocation-free
// (the bitstring key is built by the caller, outside the shot loop).
func TestCountsShotLoopZeroAllocWithMeasurement(t *testing.T) {
	dev := device.NewLine("alloc", 3, device.DefaultOptions())
	c := models.BuildDynamicBell(100)
	sched.Schedule(c, dev)
	cfg := DefaultConfig()
	cfg.Workers = 1
	r := New(dev, cfg)
	cp, err := r.compile(c)
	if err != nil {
		t.Fatal(err)
	}
	s := r.newShot(cp)
	s.reset(r.shotSeed(0))
	s.run(cp)

	shotIdx := 0
	allocs := testing.AllocsPerRun(50, func() {
		s.reset(r.shotSeed(shotIdx))
		shotIdx++
		s.run(cp)
	})
	if allocs != 0 {
		t.Errorf("measurement shot loop allocates %.1f objects per shot, want 0", allocs)
	}
}
