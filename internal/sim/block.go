package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShotBlockSize is the number of shots that advance together through one
// word operation in a bit-plane engine: the width of a machine word, one
// shot per bit.
const ShotBlockSize = 64

// BlockSeed derives the deterministic RNG seed of shot block b from a
// config seed. It is the block-granular sibling of ShotSeed: every engine
// that packs ShotBlockSize shots into one word seeds that word's sampler
// from BlockSeed(seed, b), so block trajectories cannot depend on which
// worker claimed the block, and two engines batching the same config draw
// identical per-word streams.
func BlockSeed(seed int64, b int) int64 {
	return seed*1000003 + int64(b)*104729 + 29
}

// ShotBlocks returns the number of work units ForEachShotBlock hands out
// for a shot count: one unit per full 64-shot word, plus one unit for the
// scalar remainder tail when shots is not a multiple of ShotBlockSize.
// The executor sizes per-instance worker budgets in these units — handing
// a bit-plane engine more workers than blocks buys nothing.
func ShotBlocks(shots int) int {
	if shots <= 0 {
		return 1
	}
	n := shots / ShotBlockSize
	if shots%ShotBlockSize != 0 {
		n++
	}
	return n
}

// ForEachShotBlock is the block-granular variant of ForEachShot: workers
// claim 64-shot words from an atomic counter and run block(b, base, s) for
// each full word (base = b*ShotBlockSize), while the remainder shots —
// shots mod 64 of them, at the end of the index range — run one at a time
// through tail(i, s), all on whichever worker claims the final unit, in
// index order. Per-worker state is created once and reused, so the
// steady-state loop allocates nothing, and each unit's result may depend
// only on its own index — never on the claiming worker — which is what
// makes results bit-identical for any worker count. With one worker (or
// one unit) everything runs inline with no goroutines.
func ForEachShotBlock[S any](shots, workers int, newState func() S,
	block func(b, base int, s S), tail func(i int, s S)) {
	if shots <= 0 {
		return
	}
	full := shots / ShotBlockSize
	// Single-assignment on purpose: the worker goroutines capture units,
	// and a post-init write would turn it into a by-reference capture that
	// heap-allocates even on the serial path.
	units := ShotBlocks(shots)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	if workers == 1 {
		// Inline fast path: no goroutines, no closures — the steady-state
		// loop performs zero allocations beyond the caller's newState.
		s := newState()
		for u := 0; u < full; u++ {
			block(u, u*ShotBlockSize, s)
		}
		for i := full * ShotBlockSize; i < shots; i++ {
			tail(i, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newState()
			for {
				u := int(next.Add(1)) - 1
				if u >= units {
					return
				}
				if u < full {
					block(u, u*ShotBlockSize, s)
					continue
				}
				for i := full * ShotBlockSize; i < shots; i++ {
					tail(i, s)
				}
			}
		}()
	}
	wg.Wait()
}
