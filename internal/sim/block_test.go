package sim

import (
	"math/rand"
	"sync"
	"testing"
)

func TestShotBlocks(t *testing.T) {
	for _, tc := range []struct{ shots, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {100000, 1563},
	} {
		if got := ShotBlocks(tc.shots); got != tc.want {
			t.Errorf("ShotBlocks(%d) = %d, want %d", tc.shots, got, tc.want)
		}
	}
}

// TestForEachShotBlockCoverage checks the unit contract: every full
// 64-shot block is claimed exactly once, and the remainder tail runs every
// leftover shot exactly once, in index order, regardless of worker count.
func TestForEachShotBlockCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 7, 64} {
		const shots = 3*ShotBlockSize + 9
		var mu sync.Mutex
		blockSeen := map[int]int{}
		var tailSeen []int
		ForEachShotBlock(shots, workers, func() int { return 0 },
			func(b, base int, _ int) {
				if base != b*ShotBlockSize {
					t.Errorf("workers=%d: block %d got base %d, want %d", workers, b, base, b*ShotBlockSize)
				}
				mu.Lock()
				blockSeen[b]++
				mu.Unlock()
			},
			func(i int, _ int) {
				mu.Lock()
				tailSeen = append(tailSeen, i)
				mu.Unlock()
			})
		for b := 0; b < 3; b++ {
			if blockSeen[b] != 1 {
				t.Errorf("workers=%d: block %d claimed %d times, want 1", workers, b, blockSeen[b])
			}
		}
		if len(blockSeen) != 3 {
			t.Errorf("workers=%d: %d distinct blocks, want 3", workers, len(blockSeen))
		}
		if len(tailSeen) != 9 {
			t.Fatalf("workers=%d: %d tail shots, want 9", workers, len(tailSeen))
		}
		for j, i := range tailSeen {
			if i != 3*ShotBlockSize+j {
				t.Errorf("workers=%d: tail[%d] = %d, want %d (index order)", workers, j, i, 3*ShotBlockSize+j)
			}
		}
	}
}

// TestForEachShotBlockStateReuse pins per-worker state construction: at
// most one state per worker, exactly one when serial.
func TestForEachShotBlockStateReuse(t *testing.T) {
	var mu sync.Mutex
	states := 0
	mk := func() int {
		mu.Lock()
		states++
		mu.Unlock()
		return 0
	}
	states = 0
	ForEachShotBlock(10*ShotBlockSize, 1, mk, func(b, base int, _ int) {}, func(i int, _ int) {})
	if states != 1 {
		t.Errorf("serial loop built %d states, want 1", states)
	}
	states = 0
	ForEachShotBlock(100*ShotBlockSize, 4, mk, func(b, base int, _ int) {}, func(i int, _ int) {})
	if states > 4 {
		t.Errorf("4-worker loop built %d states, want <= 4", states)
	}
}

// TestBlockSeedDistinct spot-checks that nearby (seed, block) pairs derive
// distinct block seeds — collisions would duplicate whole 64-shot words.
func TestBlockSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		for b := 0; b < 256; b++ {
			s := BlockSeed(seed, b)
			if seen[s] {
				t.Fatalf("BlockSeed collision at seed=%d block=%d", seed, b)
			}
			seen[s] = true
		}
	}
}

type blockAllocState struct{ sum uint64 }

var blockAllocSink uint64

// TestShotBlockLoopZeroAlloc mirrors TestShotLoopZeroAlloc for the
// block-granular loop: with a reused state, the serial loop — block claims
// plus remainder tail — performs zero heap allocations.
func TestShotBlockLoopZeroAlloc(t *testing.T) {
	st := &blockAllocState{}
	mk := func() *blockAllocState { return st }
	onBlock := func(b, base int, s *blockAllocState) { s.sum += uint64(b) ^ uint64(base) }
	onTail := func(i int, s *blockAllocState) { s.sum += uint64(i) }
	allocs := testing.AllocsPerRun(50, func() {
		ForEachShotBlock(8*ShotBlockSize+5, 1, mk, onBlock, onTail)
	})
	blockAllocSink = st.sum
	if allocs != 0 {
		t.Errorf("steady-state block loop allocates %.1f objects per run, want 0", allocs)
	}
}

func TestPackedBitsRoundTrip(t *testing.T) {
	pb := NewPackedBits(3, 70)
	pb.Set(0, 0, 1)
	pb.Set(1, 64, 1)
	pb.Set(2, 69, 1)
	pb.Set(2, 69, 0)
	pb.Set(0, 33, 1)
	if pb.Bit(0, 0) != 1 || pb.Bit(0, 33) != 1 || pb.Bit(1, 64) != 1 {
		t.Error("set bits not read back")
	}
	if pb.Bit(2, 69) != 0 || pb.Bit(0, 1) != 0 {
		t.Error("cleared bits read as set")
	}
	if got := pb.Ones(0); got != 2 {
		t.Errorf("Ones(0) = %d, want 2", got)
	}
	if got := pb.OnesXor(0, 1); got != 3 {
		t.Errorf("OnesXor(0,1) = %d, want 3", got)
	}
}

// TestPackedBitsTailMask: plane words beyond the shot count must not leak
// into popcounts even if set.
func TestPackedBitsTailMask(t *testing.T) {
	pb := NewPackedBits(1, 66)
	pb.Planes[0][1] = ^uint64(0) // bits 64..127 all set; only 64, 65 valid
	if got := pb.Ones(0); got != 2 {
		t.Errorf("Ones with dirty tail = %d, want 2", got)
	}
	if got := pb.OnesXor(0, 0); got != 0 {
		t.Errorf("OnesXor(self) = %d, want 0", got)
	}
}

// TestPackedBitsAppend pins the instance-order concatenation against a
// per-shot rebuild, at offsets that exercise the word-boundary shift.
func TestPackedBitsAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ aShots, bShots int }{
		{0, 5}, {5, 0}, {64, 64}, {70, 3}, {63, 130}, {1, 64}, {100, 29},
	} {
		a, b := NewPackedBits(2, tc.aShots), NewPackedBits(2, tc.bShots)
		for c := 0; c < 2; c++ {
			for s := 0; s < tc.aShots; s++ {
				a.Set(c, s, rng.Intn(2))
			}
			for s := 0; s < tc.bShots; s++ {
				b.Set(c, s, rng.Intn(2))
			}
		}
		got := a.Append(b)
		if got.Shots != tc.aShots+tc.bShots {
			t.Fatalf("a=%d b=%d: shots = %d", tc.aShots, tc.bShots, got.Shots)
		}
		for c := 0; c < 2; c++ {
			for s := 0; s < tc.aShots; s++ {
				if got.Bit(c, s) != a.Bit(c, s) {
					t.Fatalf("a=%d b=%d: bit (%d,%d) lost from a", tc.aShots, tc.bShots, c, s)
				}
			}
			for s := 0; s < tc.bShots; s++ {
				if got.Bit(c, tc.aShots+s) != b.Bit(c, s) {
					t.Fatalf("a=%d b=%d: bit (%d,%d) of b misplaced", tc.aShots, tc.bShots, c, s)
				}
			}
		}
	}
}

// TestPackedBitsAppendDirtyTail: garbage beyond either operand's shot count
// must not leak into the concatenation.
func TestPackedBitsAppendDirtyTail(t *testing.T) {
	a, b := NewPackedBits(1, 5), NewPackedBits(1, 3)
	all := ^uint64(0)
	a.Planes[0][0] = all << 5 // dirty beyond shot 4
	b.Planes[0][0] = 0b101 | all<<3
	got := a.Append(b)
	if n := got.Ones(0); n != 2 {
		t.Errorf("Ones = %d, want 2 (dirty tails leaked)", n)
	}
	for s, want := range []int{0, 0, 0, 0, 0, 1, 0, 1} {
		if got.Bit(0, s) != want {
			t.Errorf("bit %d = %d, want %d", s, got.Bit(0, s), want)
		}
	}
}

func TestPackedBitsOnesParity(t *testing.T) {
	pb := NewPackedBits(2, 66)
	pb.Set(0, 0, 1)  // parity 1
	pb.Set(1, 0, 1)  // back to 0
	pb.Set(0, 65, 1) // parity 1
	pb.Set(1, 3, 1)  // parity 1
	if n := pb.OnesParity([]int{0, 1}); n != 2 {
		t.Errorf("OnesParity(0,1) = %d, want 2", n)
	}
	if n := pb.OnesParity([]int{0}); n != 2 {
		t.Errorf("OnesParity(0) = %d, want 2", n)
	}
	if n := pb.OnesParity(nil); n != 0 {
		t.Errorf("OnesParity() = %d, want 0", n)
	}
	// Out-of-range planes contribute nothing.
	if n := pb.OnesParity([]int{1, 7}); n != pb.Ones(1) {
		t.Errorf("OnesParity(1,7) = %d, want %d", n, pb.Ones(1))
	}
}

func TestPackedBitsCounts(t *testing.T) {
	pb := NewPackedBits(2, 65)
	// shot 0 -> "10", shot 64 -> "01", rest -> "00".
	pb.Set(0, 0, 1)
	pb.Set(1, 64, 1)
	res := pb.Counts()
	if res.Shots != 65 {
		t.Fatalf("shots = %d, want 65", res.Shots)
	}
	want := map[string]int{"10": 1, "01": 1, "00": 63}
	if len(res.Counts) != len(want) {
		t.Fatalf("counts = %v, want %v", res.Counts, want)
	}
	for k, n := range want {
		if res.Counts[k] != n {
			t.Errorf("counts[%q] = %d, want %d", k, res.Counts[k], n)
		}
	}
}
