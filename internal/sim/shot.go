package sim

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"casq/internal/linalg"
)

// shot holds per-trajectory state: the statevector, classical bits, the
// diagonal coherent-phase accumulator, and the per-shot random frequency
// offsets (charge parity, quasi-static detuning). One shot value is reused
// across every trajectory a worker runs: reset re-seeds the RNG and clears
// the state in place, so the steady-state shot loop performs no heap
// allocations.
type shot struct {
	r   *Runner
	cp  *compiled
	src rand.Source
	rng *rand.Rand

	psi   linalg.Vector
	cbits []int

	phiZ  []float64 // pending Rz angle per qubit
	phiZZ []float64 // pending Rzz angle per edge index

	omegaExtra []float64 // rad/ns per qubit: parity + quasistatic

	// Flush scratch, reused across applyDiagonal calls: per staged term the
	// basis mask(s) and the precomputed half-angle phase factors for even
	// (e^{-i phi/2}) and odd (e^{+i phi/2}) Z parity.
	zMasks        []int
	zEven, zOdd   []complex128
	zzMasksA      []int
	zzMasksB      []int
	zzEven, zzOdd []complex128
	obsScratchVec linalg.Vector // lazily sized observable scratch
}

// newShot allocates a shot's buffers once. It must be paired with reset
// before the first trajectory runs.
func (r *Runner) newShot(cp *compiled) *shot {
	src := rand.NewSource(0)
	s := &shot{
		r:          r,
		cp:         cp,
		src:        src,
		rng:        rand.New(src),
		psi:        linalg.NewVector(cp.nq),
		cbits:      make([]int, cp.ncb),
		phiZ:       make([]float64, cp.nq),
		phiZZ:      make([]float64, len(cp.edges)),
		omegaExtra: make([]float64, cp.nq),
		zMasks:     make([]int, 0, cp.nq),
		zEven:      make([]complex128, 0, cp.nq),
		zOdd:       make([]complex128, 0, cp.nq),
		zzMasksA:   make([]int, 0, len(cp.edges)),
		zzMasksB:   make([]int, 0, len(cp.edges)),
		zzEven:     make([]complex128, 0, len(cp.edges)),
		zzOdd:      make([]complex128, 0, len(cp.edges)),
	}
	return s
}

// reset prepares the shot for a new trajectory: re-seed the RNG (the stream
// is identical to a freshly constructed rand.New(rand.NewSource(seed))),
// restore |0...0>, clear classical bits and accumulators, and redraw the
// per-shot frequency offsets in the same RNG order as before the reuse
// optimization, so trajectories are bit-identical to per-shot allocation.
func (s *shot) reset(seed int64) {
	s.src.Seed(seed)
	for i := range s.psi {
		s.psi[i] = 0
	}
	s.psi[0] = 1
	for i := range s.cbits {
		s.cbits[i] = 0
	}
	for i := range s.phiZ {
		s.phiZ[i] = 0
	}
	for i := range s.phiZZ {
		s.phiZZ[i] = 0
	}
	r, cp := s.r, s.cp
	for q := 0; q < cp.nq; q++ {
		w := 0.0
		if r.Cfg.EnableParity {
			eps := 1.0
			if s.rng.Intn(2) == 1 {
				eps = -1
			}
			w += eps * r.Dev.Delta[q] * hzToRadPerNs
		}
		if r.Cfg.EnableQuasistatic && q < len(r.Dev.Quasistatic) {
			w += s.rng.NormFloat64() * r.Dev.Quasistatic[q] * hzToRadPerNs
		}
		s.omegaExtra[q] = w
	}
}

// obsScratch returns the shot's observable-evaluation scratch vector,
// allocating it on first use (Counts runs never pay for it).
func (s *shot) obsScratch() linalg.Vector {
	if s.obsScratchVec == nil {
		s.obsScratchVec = make(linalg.Vector, len(s.psi))
	}
	return s.obsScratchVec
}

// numShots returns the effective shot count (at least 1).
func (r *Runner) numShots() int {
	if r.Cfg.Shots <= 0 {
		return 1
	}
	return r.Cfg.Shots
}

// shotSeed derives the deterministic seed of shot i.
func (r *Runner) shotSeed(i int) int64 {
	return ShotSeed(r.Cfg.Seed, i)
}

// ShotSeed derives the deterministic seed of shot i from a config seed.
// It is the single seeding convention of every engine (the stabilizer
// engine consumes it too), so trajectory seeding cannot silently diverge
// between backends.
func ShotSeed(seed int64, i int) int64 {
	return seed*1000003 + int64(i)*7919 + 13
}

// ForEachShot runs fn for every shot index, parallelized over workers
// (0 = GOMAXPROCS), with per-worker state created once and reused: each
// worker owns one S for its whole lifetime and claims indices from an
// atomic counter, so the steady-state loop allocates nothing and results
// must not depend on which worker ran which index. With one worker the
// loop runs inline with no goroutines at all. Shared by the statevector
// and stabilizer engines.
func ForEachShot[S any](shots, workers int, newState func() S, fn func(i int, s S)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	if workers == 1 {
		s := newState()
		for i := 0; i < shots; i++ {
			fn(i, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newState()
			for {
				i := int(next.Add(1)) - 1
				if i >= shots {
					return
				}
				fn(i, s)
			}
		}()
	}
	wg.Wait()
}

// forEachShot is the Runner's shot loop: reusable per-worker shot state,
// deterministic per-shot seeding independent of scheduling.
func (r *Runner) forEachShot(fn func(i int, s *shot), cp *compiled) {
	ForEachShot(r.numShots(), r.Cfg.Workers, func() *shot { return r.newShot(cp) },
		func(i int, s *shot) {
			s.reset(r.shotSeed(i))
			fn(i, s)
		})
}

// run executes every layer of the compiled circuit.
func (s *shot) run(cp *compiled) {
	for li := range cp.layers {
		s.runLayer(&cp.layers[li])
	}
}

func (s *shot) runLayer(l *layerExec) {
	cur := l.start
	for i := range l.events {
		ev := &l.events[i]
		s.accumulate(l, cur, ev.t)
		cur = ev.t
		s.exec(l, ev)
	}
	s.accumulate(l, cur, l.start+l.dur)
	if s.r.Cfg.EnableT1T2 && l.dur > 0 {
		s.applyRelaxation(l.dur)
	}
}

func (s *shot) exec(l *layerExec, ev *event) {
	if ev.in != nil && ev.in.Cond != nil {
		c := ev.in.Cond
		if s.cbits[c.Bit] != c.Value {
			return
		}
	}
	switch ev.kind {
	case opVirtualZ:
		s.phiZ[ev.q0] += ev.angle
	case opDiagRZZ:
		s.phiZZ[ev.edge] += ev.angle
		// Rzz(theta) = exp(-i theta/2 ZZ) carries no single-qubit part.
	case opPauliX:
		s.flipAccumulator(ev.q0)
		s.psi.Apply1Q(ev.mat, ev.q0)
		if ev.errProb > 0 {
			s.depolarize1Q(ev.q0, ev.errProb)
		}
	case opEchoFlip:
		s.flipAccumulator(ev.q0)
	case opApply1Q:
		s.flushQubit(ev.q0)
		s.psi.Apply1Q(ev.mat, ev.q0)
		if ev.errProb > 0 {
			s.depolarize1Q(ev.q0, ev.errProb)
		}
	case opApply2Q:
		s.flushQubit(ev.q0)
		s.flushQubit(ev.q1)
		// Gate matrices use the |first operand, second operand> basis, so
		// the first operand is the high bit of the 4x4 index.
		s.psi.Apply2Q(ev.mat, ev.q0, ev.q1)
	case opGateErr1Q:
		s.depolarize1Q(ev.q0, ev.errProb)
	case opGateErr2Q:
		s.depolarize2Q(ev.q0, ev.q1, ev.errProb)
	case opMeasure:
		s.measure(ev.q0, ev.in.CBit)
	}
}

// accumulate integrates the coherent crosstalk Hamiltonian over [from, to]
// within the layer's context into the pending phase accumulator.
func (s *shot) accumulate(l *layerExec, from, to float64) {
	dt := to - from
	if dt <= 0 {
		return
	}
	cfg := &s.r.Cfg
	res := s.r.Dev.RotaryResidual
	if cfg.EnableZZ {
		for i, e := range s.cp.edges {
			w := s.cp.omega[i]
			if w == 0 || l.gatePair[i] {
				continue
			}
			fa, fb := 1.0, 1.0
			if l.rotary[e.A] {
				fa = res
			}
			if l.rotary[e.B] {
				fb = res
			}
			s.phiZZ[i] += w * dt * fa * fb
			s.phiZ[e.A] -= w * dt * fa
			s.phiZ[e.B] -= w * dt * fb
		}
	}
	if cfg.EnableStark {
		for _, st := range s.cp.starks {
			if !l.driven[st.src] || l.active[st.dst] {
				continue
			}
			f := 1.0
			if l.rotary[st.dst] {
				f = res
			}
			s.phiZ[st.dst] += st.w * dt * f
		}
	}
	if cfg.EnableParity || cfg.EnableQuasistatic {
		for q := 0; q < s.cp.nq; q++ {
			w := s.omegaExtra[q]
			if w == 0 {
				continue
			}
			if l.rotary[q] {
				w *= res
			}
			s.phiZ[q] += w * dt
		}
	}
}

// flipAccumulator conjugates the pending diagonal phases on q through an X
// (or Y) pulse: Z_q -> -Z_q.
func (s *shot) flipAccumulator(q int) {
	s.phiZ[q] = -s.phiZ[q]
	for _, ei := range s.cp.qEdges[q] {
		s.phiZZ[ei] = -s.phiZZ[ei]
	}
}

// stageZ moves the pending Z angle of q (if any) into the flush scratch,
// precomputing its half-angle phase factors.
func (s *shot) stageZ(q int) {
	phi := s.phiZ[q]
	if phi == 0 {
		return
	}
	s.phiZ[q] = 0
	sin, cos := math.Sincos(phi / 2)
	s.zMasks = append(s.zMasks, 1<<q)
	s.zEven = append(s.zEven, complex(cos, -sin))
	s.zOdd = append(s.zOdd, complex(cos, sin))
}

// stageZZ moves the pending ZZ angle of edge ei (if any) into the flush
// scratch.
func (s *shot) stageZZ(ei int) {
	phi := s.phiZZ[ei]
	if phi == 0 {
		return
	}
	s.phiZZ[ei] = 0
	e := s.cp.edges[ei]
	sin, cos := math.Sincos(phi / 2)
	s.zzMasksA = append(s.zzMasksA, 1<<e.A)
	s.zzMasksB = append(s.zzMasksB, 1<<e.B)
	s.zzEven = append(s.zzEven, complex(cos, -sin))
	s.zzOdd = append(s.zzOdd, complex(cos, sin))
}

// flushQubit applies (and clears) every pending phase term involving q.
func (s *shot) flushQubit(q int) {
	s.clearStage()
	s.stageZ(q)
	for _, ei := range s.cp.qEdges[q] {
		s.stageZZ(ei)
	}
	s.applyStaged()
}

// flushAll applies and clears the entire accumulator.
func (s *shot) flushAll() {
	s.clearStage()
	for q := 0; q < s.cp.nq; q++ {
		s.stageZ(q)
	}
	for ei := range s.phiZZ {
		s.stageZZ(ei)
	}
	s.applyStaged()
}

func (s *shot) clearStage() {
	s.zMasks = s.zMasks[:0]
	s.zEven = s.zEven[:0]
	s.zOdd = s.zOdd[:0]
	s.zzMasksA = s.zzMasksA[:0]
	s.zzMasksB = s.zzMasksB[:0]
	s.zzEven = s.zzEven[:0]
	s.zzOdd = s.zzOdd[:0]
}

// applyStaged multiplies each amplitude by the staged diagonal unitary
// exp(-i/2 * sum of z-weighted angles). The per-term phase factors were
// precomputed by stageZ/stageZZ with a single math.Sincos each, so the
// per-basis-state work is one complex multiply per staged term — no
// cmplx.Exp in the 2^n loop.
func (s *shot) applyStaged() {
	nz, nzz := len(s.zMasks), len(s.zzMasksA)
	if nz == 0 && nzz == 0 {
		return
	}
	psi := s.psi
	// Fast path: a single Z term is by far the most common flush shape
	// (one qubit flushed before a 1q gate with no pending couplings).
	if nz == 1 && nzz == 0 {
		m := s.zMasks[0]
		fe, fo := s.zEven[0], s.zOdd[0]
		for b := range psi {
			if b&m == 0 {
				psi[b] *= fe
			} else {
				psi[b] *= fo
			}
		}
		return
	}
	for b := range psi {
		f := complex(1.0, 0.0)
		for i := 0; i < nz; i++ {
			if b&s.zMasks[i] == 0 {
				f *= s.zEven[i]
			} else {
				f *= s.zOdd[i]
			}
		}
		for i := 0; i < nzz; i++ {
			if (b&s.zzMasksA[i] == 0) == (b&s.zzMasksB[i] == 0) {
				f *= s.zzEven[i]
			} else {
				f *= s.zzOdd[i]
			}
		}
		psi[b] *= f
	}
}

// depolarize1Q applies a uniform non-identity Pauli with probability p.
func (s *shot) depolarize1Q(q int, p float64) {
	if !s.r.Cfg.EnableGateErr || p <= 0 || s.rng.Float64() >= p {
		return
	}
	s.applyRandomPauli(q)
}

func (s *shot) applyRandomPauli(q int) {
	s.applyPauliCode(q, 1+s.rng.Intn(3))
}

// applyPauliCode applies the Pauli with code pk (0=I, 1=X, 2=Y, 3=Z) to
// qubit q, routing Z through the phase accumulator.
func (s *shot) applyPauliCode(q, pk int) {
	switch pk {
	case 1:
		s.flipAccumulator(q)
		s.psi.Apply1Q(xMat, q)
	case 2:
		s.flipAccumulator(q)
		s.psi.Apply1Q(yMat, q)
	case 3:
		s.phiZ[q] += math.Pi
	}
}

// depolarize2Q applies a uniform non-identity two-qubit Pauli with
// probability p.
func (s *shot) depolarize2Q(q0, q1 int, p float64) {
	if !s.r.Cfg.EnableGateErr || p <= 0 || s.rng.Float64() >= p {
		return
	}
	k := 1 + s.rng.Intn(15) // 1..15, base-4 digits (p0, p1)
	s.applyPauliCode(q0, k%4)
	s.applyPauliCode(q1, k/4)
}

// applyRelaxation applies T1 amplitude damping (trajectory unraveling) and
// pure dephasing for a duration dur (ns) on every qubit. A non-positive T1
// disables amplitude damping entirely, and the pure-dephasing rate then
// reduces to 1/Tphi = 1/T2 (T2-only devices keep their dephasing rather
// than silently losing it to a 1/(2*T1) division by zero).
func (s *shot) applyRelaxation(dur float64) {
	for q := 0; q < s.cp.nq; q++ {
		t1 := s.r.Dev.T1[q]
		t2 := s.r.Dev.T2[q]
		if t1 > 0 {
			gamma := 1 - math.Exp(-dur/t1)
			p1 := s.psi.Prob(q, 1)
			if pj := gamma * p1; pj > 0 && s.rng.Float64() < pj {
				// Quantum jump: |1> -> |0>.
				s.flushAll()
				s.jumpDown(q)
			} else if gamma > 0 {
				// No-jump back-action: K0 = diag(1, sqrt(1-gamma)).
				s.dampNoJump(q, gamma, p1)
			}
		}
		if t2 > 0 {
			// Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1), with the T1
			// term absent when damping is disabled.
			invTphi := 1 / t2
			if t1 > 0 {
				invTphi -= 1 / (2 * t1)
			}
			if invTphi > 0 {
				p := (1 - math.Exp(-dur*invTphi)) / 2
				if s.rng.Float64() < p {
					s.phiZ[q] += math.Pi
				}
			}
		}
	}
}

func (s *shot) jumpDown(q int) {
	bit := 1 << q
	for b := range s.psi {
		if b&bit == 0 {
			s.psi[b] = s.psi[b|bit]
		} else {
			s.psi[b] = 0
		}
	}
	s.psi.Normalize()
}

// dampNoJump applies the no-jump Kraus K0 = diag(1, sqrt(1-gamma)) on q
// and renormalizes in a single pass: the state enters normalized, so the
// post-damp norm is sqrt(1 - gamma*p1) analytically, with p1 the excited
// population already computed for the jump draw. (The separate
// damp-then-Normalize formulation cost three extra full-vector passes per
// qubit per layer.)
func (s *shot) dampNoJump(q int, gamma, p1 float64) {
	n2 := 1 - gamma*p1
	if n2 <= 0 {
		// Fully damped within rounding; the jump branch should have fired.
		// Fall back to the explicit renormalization.
		bit := 1 << q
		k := complex(math.Sqrt(1-gamma), 0)
		for b := range s.psi {
			if b&bit != 0 {
				s.psi[b] *= k
			}
		}
		s.psi.Normalize()
		return
	}
	inv := 1 / math.Sqrt(n2)
	f0 := complex(inv, 0)
	f1 := complex(math.Sqrt(1-gamma)*inv, 0)
	bit := 1 << q
	for b := range s.psi {
		if b&bit == 0 {
			s.psi[b] *= f0
		} else {
			s.psi[b] *= f1
		}
	}
}

// measure projects qubit q, storing the (readout-error-corrupted) outcome in
// classical bit cbit. The collapse itself uses the true outcome.
func (s *shot) measure(q, cbit int) {
	p1 := s.psi.Prob(q, 1)
	bit := 0
	if s.rng.Float64() < p1 {
		bit = 1
	}
	s.psi.Collapse(q, bit)
	recorded := bit
	if s.r.Cfg.EnableReadoutErr && s.rng.Float64() < s.r.Dev.ReadoutErr[q] {
		recorded = 1 - recorded
	}
	if cbit >= 0 && cbit < len(s.cbits) {
		s.cbits[cbit] = recorded
	}
}

var (
	xMat = linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	yMat = linalg.FromRows([][]complex128{{0, -1i}, {1i, 0}})
)
