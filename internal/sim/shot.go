package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"sync"

	"casq/internal/linalg"
)

// shot holds per-trajectory state: the statevector, classical bits, the
// diagonal coherent-phase accumulator, and the per-shot random frequency
// offsets (charge parity, quasi-static detuning).
type shot struct {
	r   *Runner
	cp  *compiled
	rng *rand.Rand

	psi   linalg.Vector
	cbits []int

	phiZ  []float64 // pending Rz angle per qubit
	phiZZ []float64 // pending Rzz angle per edge index

	omegaExtra []float64 // rad/ns per qubit: parity + quasistatic
}

func (r *Runner) newShot(cp *compiled, seed int64) *shot {
	s := &shot{
		r:          r,
		cp:         cp,
		rng:        rand.New(rand.NewSource(seed)),
		psi:        linalg.NewVector(cp.nq),
		cbits:      make([]int, cp.ncb),
		phiZ:       make([]float64, cp.nq),
		phiZZ:      make([]float64, len(cp.edges)),
		omegaExtra: make([]float64, cp.nq),
	}
	for q := 0; q < cp.nq; q++ {
		w := 0.0
		if r.Cfg.EnableParity {
			eps := 1.0
			if s.rng.Intn(2) == 1 {
				eps = -1
			}
			w += eps * r.Dev.Delta[q] * hzToRadPerNs
		}
		if r.Cfg.EnableQuasistatic && q < len(r.Dev.Quasistatic) {
			w += s.rng.NormFloat64() * r.Dev.Quasistatic[q] * hzToRadPerNs
		}
		s.omegaExtra[q] = w
	}
	return s
}

// forEachShot runs fn for every shot index, parallelized over workers, with
// deterministic per-shot seeding independent of scheduling.
func (r *Runner) forEachShot(fn func(i int, s *shot), cp *compiled) {
	shots := r.Cfg.Shots
	if shots <= 0 {
		shots = 1
	}
	workers := r.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	var wg sync.WaitGroup
	next := make(chan int, shots)
	for i := 0; i < shots; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s := r.newShot(cp, r.Cfg.Seed*1000003+int64(i)*7919+13)
				fn(i, s)
			}
		}()
	}
	wg.Wait()
}

// run executes every layer of the compiled circuit.
func (s *shot) run(cp *compiled) {
	for li := range cp.layers {
		s.runLayer(&cp.layers[li])
	}
}

func (s *shot) runLayer(l *layerExec) {
	cur := l.start
	for i := range l.events {
		ev := &l.events[i]
		s.accumulate(l, cur, ev.t)
		cur = ev.t
		s.exec(l, ev)
	}
	s.accumulate(l, cur, l.start+l.dur)
	if s.r.Cfg.EnableT1T2 && l.dur > 0 {
		s.applyRelaxation(l.dur)
	}
}

func (s *shot) exec(l *layerExec, ev *event) {
	if ev.in != nil && ev.in.Cond != nil {
		c := ev.in.Cond
		if s.cbits[c.Bit] != c.Value {
			return
		}
	}
	switch ev.kind {
	case opVirtualZ:
		s.phiZ[ev.q0] += ev.angle
	case opDiagRZZ:
		s.phiZZ[ev.edge] += ev.angle
		// Rzz(theta) = exp(-i theta/2 ZZ) carries no single-qubit part.
	case opPauliX:
		s.flipAccumulator(ev.q0)
		s.psi.Apply1Q(ev.mat, ev.q0)
		if ev.errProb > 0 {
			s.depolarize1Q(ev.q0, ev.errProb)
		}
	case opEchoFlip:
		s.flipAccumulator(ev.q0)
	case opApply1Q:
		s.flushQubit(ev.q0)
		s.psi.Apply1Q(ev.mat, ev.q0)
		if ev.errProb > 0 {
			s.depolarize1Q(ev.q0, ev.errProb)
		}
	case opApply2Q:
		s.flushQubit(ev.q0)
		s.flushQubit(ev.q1)
		// Gate matrices use the |first operand, second operand> basis, so
		// the first operand is the high bit of the 4x4 index.
		s.psi.Apply2Q(ev.mat, ev.q0, ev.q1)
	case opGateErr1Q:
		s.depolarize1Q(ev.q0, ev.errProb)
	case opGateErr2Q:
		s.depolarize2Q(ev.q0, ev.q1, ev.errProb)
	case opMeasure:
		s.measure(ev.q0, ev.in.CBit)
	}
}

// accumulate integrates the coherent crosstalk Hamiltonian over [from, to]
// within the layer's context into the pending phase accumulator.
func (s *shot) accumulate(l *layerExec, from, to float64) {
	dt := to - from
	if dt <= 0 {
		return
	}
	cfg := &s.r.Cfg
	res := s.r.Dev.RotaryResidual
	if cfg.EnableZZ {
		for i, e := range s.cp.edges {
			w := s.cp.omega[i]
			if w == 0 || l.gatePair[i] {
				continue
			}
			fa, fb := 1.0, 1.0
			if l.rotary[e.A] {
				fa = res
			}
			if l.rotary[e.B] {
				fb = res
			}
			s.phiZZ[i] += w * dt * fa * fb
			s.phiZ[e.A] -= w * dt * fa
			s.phiZ[e.B] -= w * dt * fb
		}
	}
	if cfg.EnableStark {
		for _, st := range s.cp.starks {
			if !l.driven[st.src] || l.active[st.dst] {
				continue
			}
			f := 1.0
			if l.rotary[st.dst] {
				f = res
			}
			s.phiZ[st.dst] += st.w * dt * f
		}
	}
	if cfg.EnableParity || cfg.EnableQuasistatic {
		for q := 0; q < s.cp.nq; q++ {
			w := s.omegaExtra[q]
			if w == 0 {
				continue
			}
			if l.rotary[q] {
				w *= res
			}
			s.phiZ[q] += w * dt
		}
	}
}

// flipAccumulator conjugates the pending diagonal phases on q through an X
// (or Y) pulse: Z_q -> -Z_q.
func (s *shot) flipAccumulator(q int) {
	s.phiZ[q] = -s.phiZ[q]
	for _, ei := range s.cp.qEdges[q] {
		s.phiZZ[ei] = -s.phiZZ[ei]
	}
}

// flushQubit applies (and clears) every pending phase term involving q.
func (s *shot) flushQubit(q int) {
	var zTerms []int
	var zAngles []float64
	if s.phiZ[q] != 0 {
		zTerms = append(zTerms, 1<<q)
		zAngles = append(zAngles, s.phiZ[q])
		s.phiZ[q] = 0
	}
	var zzMasksA, zzMasksB []int
	var zzAngles []float64
	for _, ei := range s.cp.qEdges[q] {
		if s.phiZZ[ei] != 0 {
			e := s.cp.edges[ei]
			zzMasksA = append(zzMasksA, 1<<e.A)
			zzMasksB = append(zzMasksB, 1<<e.B)
			zzAngles = append(zzAngles, s.phiZZ[ei])
			s.phiZZ[ei] = 0
		}
	}
	if len(zTerms) == 0 && len(zzAngles) == 0 {
		return
	}
	s.applyDiagonal(zTerms, zAngles, zzMasksA, zzMasksB, zzAngles)
}

// flushAll applies and clears the entire accumulator.
func (s *shot) flushAll() {
	var zTerms []int
	var zAngles []float64
	for q := 0; q < s.cp.nq; q++ {
		if s.phiZ[q] != 0 {
			zTerms = append(zTerms, 1<<q)
			zAngles = append(zAngles, s.phiZ[q])
			s.phiZ[q] = 0
		}
	}
	var zzMasksA, zzMasksB []int
	var zzAngles []float64
	for ei, phi := range s.phiZZ {
		if phi != 0 {
			e := s.cp.edges[ei]
			zzMasksA = append(zzMasksA, 1<<e.A)
			zzMasksB = append(zzMasksB, 1<<e.B)
			zzAngles = append(zzAngles, phi)
			s.phiZZ[ei] = 0
		}
	}
	if len(zTerms) == 0 && len(zzAngles) == 0 {
		return
	}
	s.applyDiagonal(zTerms, zAngles, zzMasksA, zzMasksB, zzAngles)
}

// applyDiagonal multiplies each amplitude by exp(-i/2 * sum of z-weighted
// angles), the diagonal unitary of the accumulated Rz/Rzz terms.
func (s *shot) applyDiagonal(zMasks []int, zAngles []float64, zzA, zzB []int, zzAngles []float64) {
	n := len(s.psi)
	for b := 0; b < n; b++ {
		phase := 0.0
		for i, m := range zMasks {
			if b&m == 0 {
				phase += zAngles[i]
			} else {
				phase -= zAngles[i]
			}
		}
		for i := range zzAngles {
			za := b&zzA[i] == 0
			zb := b&zzB[i] == 0
			if za == zb {
				phase += zzAngles[i]
			} else {
				phase -= zzAngles[i]
			}
		}
		if phase != 0 {
			s.psi[b] *= cmplx.Exp(complex(0, -phase/2))
		}
	}
}

// depolarize1Q applies a uniform non-identity Pauli with probability p.
func (s *shot) depolarize1Q(q int, p float64) {
	if !s.r.Cfg.EnableGateErr || p <= 0 || s.rng.Float64() >= p {
		return
	}
	s.applyRandomPauli(q)
}

func (s *shot) applyRandomPauli(q int) {
	switch s.rng.Intn(3) {
	case 0: // X
		s.flipAccumulator(q)
		s.psi.Apply1Q(xMat, q)
	case 1: // Y
		s.flipAccumulator(q)
		s.psi.Apply1Q(yMat, q)
	default: // Z
		s.phiZ[q] += math.Pi
	}
}

// depolarize2Q applies a uniform non-identity two-qubit Pauli with
// probability p.
func (s *shot) depolarize2Q(q0, q1 int, p float64) {
	if !s.r.Cfg.EnableGateErr || p <= 0 || s.rng.Float64() >= p {
		return
	}
	k := 1 + s.rng.Intn(15) // 1..15, base-4 digits (p0, p1)
	p0, p1 := k%4, k/4
	apply := func(q, pk int) {
		switch pk {
		case 1:
			s.flipAccumulator(q)
			s.psi.Apply1Q(xMat, q)
		case 2:
			s.flipAccumulator(q)
			s.psi.Apply1Q(yMat, q)
		case 3:
			s.phiZ[q] += math.Pi
		}
	}
	apply(q0, p0)
	apply(q1, p1)
}

// applyRelaxation applies T1 amplitude damping (trajectory unraveling) and
// pure dephasing for a duration dur (ns) on every qubit.
func (s *shot) applyRelaxation(dur float64) {
	for q := 0; q < s.cp.nq; q++ {
		t1 := s.r.Dev.T1[q]
		t2 := s.r.Dev.T2[q]
		if t1 > 0 {
			gamma := 1 - math.Exp(-dur/t1)
			p1 := s.psi.Prob(q, 1)
			if pj := gamma * p1; pj > 0 && s.rng.Float64() < pj {
				// Quantum jump: |1> -> |0>.
				s.flushAll()
				s.jumpDown(q)
			} else if gamma > 0 {
				// No-jump back-action: K0 = diag(1, sqrt(1-gamma)).
				s.damp(q, math.Sqrt(1-gamma))
			}
		}
		if t2 > 0 {
			// Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1).
			invTphi := 1/t2 - 1/(2*t1)
			if invTphi > 0 {
				p := (1 - math.Exp(-dur*invTphi)) / 2
				if s.rng.Float64() < p {
					s.phiZ[q] += math.Pi
				}
			}
		}
	}
}

func (s *shot) jumpDown(q int) {
	bit := 1 << q
	for b := range s.psi {
		if b&bit == 0 {
			s.psi[b] = s.psi[b|bit]
		} else {
			s.psi[b] = 0
		}
	}
	s.psi.Normalize()
}

func (s *shot) damp(q int, k float64) {
	bit := 1 << q
	for b := range s.psi {
		if b&bit != 0 {
			s.psi[b] *= complex(k, 0)
		}
	}
	s.psi.Normalize()
}

// measure projects qubit q, storing the (readout-error-corrupted) outcome in
// classical bit cbit. The collapse itself uses the true outcome.
func (s *shot) measure(q, cbit int) {
	p1 := s.psi.Prob(q, 1)
	bit := 0
	if s.rng.Float64() < p1 {
		bit = 1
	}
	s.psi.Collapse(q, bit)
	recorded := bit
	if s.r.Cfg.EnableReadoutErr && s.rng.Float64() < s.r.Dev.ReadoutErr[q] {
		recorded = 1 - recorded
	}
	if cbit >= 0 && cbit < len(s.cbits) {
		s.cbits[cbit] = recorded
	}
}

var (
	xMat = linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	yMat = linalg.FromRows([][]complex128{{0, -1i}, {1i, 0}})
)
