package sim_test

import (
	"math"
	"runtime"
	"testing"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/models"
	"casq/internal/sched"
	"casq/internal/sim"
)

// The values below were produced by the pre-overhaul kernel (per-shot
// allocation, cmplx.Exp-per-amplitude diagonal flush, skip-scan Apply1Q/2Q,
// copy-per-observable eval) on the workloads of goldenCountsCircuit and
// BuildFloquetIsing(4, 2), DefaultConfig with Shots=128, Workers=1 on
// device.NewLine("golden", 4, DefaultOptions). They pin the overhaul:
// counts must match exactly (the RNG consumption per trajectory is
// unchanged and no sampled threshold sits within rounding distance of a
// probability), expectations within 1e-9 (the fused diagonal composes the
// same rotations with different rounding).
var goldenCounts = map[string]int{
	"0000": 14, "0001": 2, "0010": 12, "0011": 6,
	"0100": 6, "0101": 5, "0110": 5, "0111": 12,
	"1000": 7, "1001": 13, "1010": 14, "1011": 5,
	"1100": 7, "1101": 8, "1110": 10, "1111": 2,
}

var goldenExpVals = []float64{
	-0.92118524451463901, // <X0 X3>
	0.953125,             // <Z1>
	0,                    // <Y2>
}

func goldenDevice() *device.Device {
	return device.NewLine("golden", 4, device.DefaultOptions())
}

func goldenConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Shots = 128
	cfg.Workers = 1
	return cfg
}

func goldenCountsCircuit() *circuit.Circuit {
	c := circuit.New(4, 4)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(2)
	c.AddLayer(circuit.TwoQubitLayer).ECR(0, 1)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.ECR(2, 3)
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{400}})
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{400}})
	c.AddLayer(circuit.OneQubitLayer).RZ(1, 0.3).X(0)
	m := c.AddLayer(circuit.MeasureLayer)
	m.Measure(0, 0)
	m.Measure(1, 1)
	m.Measure(2, 2)
	m.Measure(3, 3)
	return c
}

func TestGoldenCountsMatchPreOverhaulKernel(t *testing.T) {
	dev := goldenDevice()
	c := goldenCountsCircuit()
	sched.Schedule(c, dev)
	res, err := sim.New(dev, goldenConfig()).Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 128 {
		t.Fatalf("shots %d, want 128", res.Shots)
	}
	if len(res.Counts) != len(goldenCounts) {
		t.Errorf("distinct bitstrings %d, want %d", len(res.Counts), len(goldenCounts))
	}
	for bits, want := range goldenCounts {
		if got := res.Counts[bits]; got != want {
			t.Errorf("counts[%q] = %d, want %d (pre-overhaul kernel)", bits, got, want)
		}
	}
}

func TestGoldenExpectationsMatchPreOverhaulKernel(t *testing.T) {
	dev := goldenDevice()
	c := models.BuildFloquetIsing(4, 2)
	sched.Schedule(c, dev)
	obs := []sim.ObsSpec{{0: 'X', 3: 'X'}, {1: 'Z'}, {2: 'Y'}}
	vals, err := sim.New(dev, goldenConfig()).Expectations(c, obs)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range goldenExpVals {
		if math.Abs(vals[j]-want) > 1e-9 {
			t.Errorf("obs %d: %v, want %v within 1e-9 (pre-overhaul kernel)", j, vals[j], want)
		}
	}
}

// TestExpectationsBitIdenticalAcrossSimWorkers pins the tentpole guarantee
// at the simulator level: shot-level fan-out must not change a single bit
// of the output for any worker count.
func TestExpectationsBitIdenticalAcrossSimWorkers(t *testing.T) {
	dev := goldenDevice()
	c := models.BuildFloquetIsing(4, 2)
	sched.Schedule(c, dev)
	obs := []sim.ObsSpec{{0: 'X', 3: 'X'}, {1: 'Z'}, {2: 'Y'}}
	var ref []float64
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := goldenConfig()
		cfg.Workers = workers
		vals, err := sim.New(dev, cfg).Expectations(c, obs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = vals
			continue
		}
		for j := range vals {
			if vals[j] != ref[j] {
				t.Errorf("workers=%d: obs %d = %v, want bit-identical %v", workers, j, vals[j], ref[j])
			}
		}
	}
}

// TestCompileCacheDetectsDeviceMutation pins the cache-key contract: a
// Runner re-running the same circuit must notice in-place device
// recalibration (the Fig. 8 sweep retunes dev.ZZ per point) and recompile
// instead of serving stale crosstalk physics.
func TestCompileCacheDetectsDeviceMutation(t *testing.T) {
	dev := goldenDevice()
	c := models.BuildFloquetIsing(4, 2)
	sched.Schedule(c, dev)
	cfg := sim.CoherentOnly(1)
	cfg.Workers = 1
	r := sim.New(dev, cfg)
	obs := []sim.ObsSpec{{0: 'X', 3: 'X'}}
	before, err := r.Expectations(c, obs)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then retune every ZZ rate in place.
	for e := range dev.ZZ {
		dev.ZZ[e] *= 3
	}
	after, err := r.Expectations(c, obs)
	if err != nil {
		t.Fatal(err)
	}
	if after[0] == before[0] {
		t.Errorf("tripled ZZ rates left <X0X3> = %v unchanged: stale compile cache", after[0])
	}
	fresh, err := sim.New(dev, cfg).Expectations(c, obs)
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != fresh[0] {
		t.Errorf("cached runner %v != fresh runner %v after device mutation", after[0], fresh[0])
	}
}

// TestObservableOutOfRangePanics pins loud failure for observables naming
// qubits beyond the register — including Z labels, which act diagonally
// and would otherwise silently evaluate as identity.
func TestObservableOutOfRangePanics(t *testing.T) {
	dev := goldenDevice()
	c := models.BuildFloquetIsing(4, 1)
	sched.Schedule(c, dev)
	cfg := sim.CoherentOnly(1)
	cfg.Workers = 1
	for _, o := range []sim.ObsSpec{{12: 'Z'}, {12: 'X'}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("observable %v on 4-qubit circuit did not panic", o)
				}
			}()
			_, _ = sim.New(dev, cfg).Expectations(c, []sim.ObsSpec{o})
		}()
	}
}

func TestCountsBitIdenticalAcrossSimWorkers(t *testing.T) {
	dev := goldenDevice()
	c := goldenCountsCircuit()
	sched.Schedule(c, dev)
	var ref map[string]int
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := goldenConfig()
		cfg.Workers = workers
		res, err := sim.New(dev, cfg).Counts(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res.Counts
			continue
		}
		if len(res.Counts) != len(ref) {
			t.Fatalf("workers=%d: counts keys differ", workers)
		}
		for bits, n := range ref {
			if res.Counts[bits] != n {
				t.Errorf("workers=%d: counts[%q] = %d, want %d", workers, bits, res.Counts[bits], n)
			}
		}
	}
}
