// Package sim is the noisy device-level simulator that substitutes for the
// paper's IBM hardware. It executes scheduled layered circuits on a
// statevector while tracking every coherent crosstalk channel the paper
// characterizes — always-on ZZ (Eq. 1), spectator Z, AC Stark shifts,
// charge-parity +/-delta terms (Eq. 6), NNN collision ZZ — plus stochastic
// channels (T1, T2, quasi-static low-frequency dephasing, depolarizing gate
// errors, readout errors).
//
// Coherent Z/ZZ phases are diagonal, so they are accumulated analytically in
// a phase accumulator and flushed into the statevector lazily, only before
// non-diagonal operations on the affected qubits. X-type pulses (DD pulses,
// twirl Paulis, the internal echo of an ECR) flip the accumulator signs,
// which reproduces the toggling-frame physics exactly for instantaneous
// pulses. The ECR gate executes as its physical sequence
// ZX(pi/4) -> X(ctrl) -> ZX(-pi/4) so that echo alignment effects (paper
// Fig. 3, cases II-IV) emerge from the dynamics rather than being assumed.
package sim

import (
	"fmt"
	"math"
	"sort"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/linalg"
)

// Config toggles the noise channels and sets sampling parameters.
type Config struct {
	Shots   int
	Seed    int64
	Workers int // 0 = GOMAXPROCS

	EnableZZ          bool // always-on ZZ + spectator Z (Eq. 1)
	EnableStark       bool // AC Stark shift on neighbors of driven qubits
	EnableParity      bool // charge-parity +/-delta Z (Eq. 6)
	EnableQuasistatic bool // per-shot Gaussian low-frequency Z detuning
	EnableT1T2        bool // Markovian amplitude damping and dephasing
	EnableGateErr     bool // depolarizing error per physical gate
	EnableReadoutErr  bool // assignment error on recorded bits
}

// DefaultConfig enables every channel with a moderate shot count.
func DefaultConfig() Config {
	return Config{
		Shots:             256,
		Seed:              7,
		EnableZZ:          true,
		EnableStark:       true,
		EnableParity:      true,
		EnableQuasistatic: true,
		EnableT1T2:        true,
		EnableGateErr:     true,
		EnableReadoutErr:  true,
	}
}

// CoherentOnly returns a config with only the deterministic coherent
// channels enabled (useful for validating suppression passes exactly).
func CoherentOnly(shots int) Config {
	return Config{
		Shots:       shots,
		Seed:        7,
		EnableZZ:    true,
		EnableStark: true,
	}
}

// Ideal returns a noiseless config (single shot: the evolution is
// deterministic).
func Ideal() Config { return Config{Shots: 1, Seed: 1} }

type opKind int

const (
	opApply1Q  opKind = iota // non-diagonal 1q matrix (flush q first)
	opPauliX                 // X/Y pulse: apply matrix + flip accumulators
	opVirtualZ               // Rz/Z/S/Sdg: add angle to accumulator
	opApply2Q                // non-diagonal 2q matrix (flush pair first)
	opDiagRZZ                // Rzz: add angle to pair accumulator
	opEchoFlip               // ghost echo: flip accumulators of q0 only
	opGateErr1Q
	opGateErr2Q
	opMeasure
)

type event struct {
	t       float64 // absolute time, ns
	seq     int
	kind    opKind
	in      *circuit.Instruction
	q0      int
	q1      int
	mat     linalg.Matrix
	angle   float64
	errProb float64
	edge    int // edge index for opDiagRZZ
	yPhase  bool
}

type layerExec struct {
	start, dur float64
	events     []event
	rotary     []bool
	active     []bool
	driven     []bool
	gatePair   []bool // per edge index
}

type starkTerm struct {
	src, dst int
	w        float64 // rad/ns
}

// Runner executes circuits on a device under a noise config.
type Runner struct {
	Dev *device.Device
	Cfg Config
}

// New returns a Runner.
func New(dev *device.Device, cfg Config) *Runner {
	return &Runner{Dev: dev, Cfg: cfg}
}

type compiled struct {
	nq, ncb int
	edges   []device.Edge
	omega   []float64 // rad/ns per edge
	edgeIdx map[device.Edge]int
	qEdges  [][]int
	starks  []starkTerm
	layers  []layerExec
}

const hzToRadPerNs = 2 * math.Pi * 1e-9

func (r *Runner) compile(c *circuit.Circuit) (*compiled, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cp := &compiled{nq: c.NQubits, ncb: c.NCBits, edgeIdx: map[device.Edge]int{}}
	addEdge := func(e device.Edge, hz float64) int {
		if i, ok := cp.edgeIdx[e]; ok {
			return i
		}
		i := len(cp.edges)
		cp.edges = append(cp.edges, e)
		cp.omega = append(cp.omega, hz*hzToRadPerNs)
		cp.edgeIdx[e] = i
		return i
	}
	for _, e := range r.Dev.AllCrosstalkEdges() {
		addEdge(e, r.Dev.ZZ[e])
	}
	// Register virtual edges used by diagonal RZZ corrections on pairs that
	// have no calibrated coupling.
	for _, l := range c.Layers {
		for _, in := range l.Instrs {
			if in.Gate == gates.RZZ {
				e := device.NewEdge(in.Qubits[0], in.Qubits[1])
				if _, ok := cp.edgeIdx[e]; !ok {
					addEdge(e, 0)
				}
			}
		}
	}
	cp.qEdges = make([][]int, cp.nq)
	for i, e := range cp.edges {
		cp.qEdges[e.A] = append(cp.qEdges[e.A], i)
		cp.qEdges[e.B] = append(cp.qEdges[e.B], i)
	}
	for d, hz := range r.Dev.Stark {
		if hz != 0 {
			cp.starks = append(cp.starks, starkTerm{d.Src, d.Dst, hz * hzToRadPerNs})
		}
	}
	sort.Slice(cp.starks, func(i, j int) bool {
		if cp.starks[i].src != cp.starks[j].src {
			return cp.starks[i].src < cp.starks[j].src
		}
		return cp.starks[i].dst < cp.starks[j].dst
	})

	for li := range c.Layers {
		l := &c.Layers[li]
		le := layerExec{
			start:    l.Start,
			dur:      l.Duration,
			rotary:   make([]bool, cp.nq),
			active:   make([]bool, cp.nq),
			driven:   make([]bool, cp.nq),
			gatePair: make([]bool, len(cp.edges)),
		}
		seq := 0
		emit := func(ev event) {
			ev.seq = seq
			seq++
			le.events = append(le.events, ev)
		}
		for ii := range l.Instrs {
			in := &l.Instrs[ii]
			switch {
			case in.Gate == gates.Delay || in.Gate == gates.Barrier:
				continue
			case in.Gate == gates.Measure:
				le.active[in.Qubits[0]] = true
				emit(event{t: l.Start, kind: opMeasure, in: in, q0: in.Qubits[0]})
			case gates.NumQubits(in.Gate) == 2:
				q0, q1 := in.Qubits[0], in.Qubits[1]
				le.active[q0], le.active[q1] = true, true
				le.driven[q0], le.driven[q1] = true, true
				le.rotary[q1] = true
				if i, ok := cp.edgeIdx[device.NewEdge(q0, q1)]; ok {
					le.gatePair[i] = true
				}
				errP := 0.0
				if p, ok := r.Dev.Err2Q[device.NewEdge(q0, q1)]; ok {
					errP = p
				} else {
					errP = 5e-3
				}
				mid := l.Start + l.Duration/2
				end := l.Start + l.Duration
				switch in.Gate {
				case gates.ECR:
					emit(event{t: l.Start, kind: opApply2Q, in: in, q0: q0, q1: q1, mat: gates.ZXMatrix(math.Pi / 4)})
					emit(event{t: mid, kind: opPauliX, in: in, q0: q0, mat: gates.Matrix1Q(gates.XGate)})
					emit(event{t: mid, kind: opApply2Q, in: in, q0: q0, q1: q1, mat: gates.ZXMatrix(-math.Pi / 4)})
					emit(event{t: end, kind: opGateErr2Q, in: in, q0: q0, q1: q1, errProb: errP})
				case gates.RZZ:
					ei := cp.edgeIdx[device.NewEdge(q0, q1)]
					// A pulse-stretched RZZ carries an X2 echo on the control
					// (pulses at T/2 and T): spectator couplings average out
					// while the frame returns to identity, so phases pending
					// from earlier layers are not conjugated. The gate's own
					// calibrated ZZ angle takes effect at completion.
					emit(event{t: mid, kind: opEchoFlip, in: in, q0: q0})
					emit(event{t: end, kind: opEchoFlip, in: in, q0: q0})
					emit(event{t: end, kind: opDiagRZZ, in: in, q0: q0, q1: q1, angle: in.Params[0], edge: ei})
					// Its error scales with the stretch fraction relative to
					// a full ECR.
					frac := math.Abs(in.Params[0]) / (math.Pi / 2)
					if frac > 1 {
						frac = 1
					}
					emit(event{t: end, kind: opGateErr2Q, in: in, q0: q0, q1: q1, errProb: errP * frac})
				default: // CX, Ucan, ZX, SWAP: logical unit with ghost echo
					var m linalg.Matrix
					if len(in.Params) > 0 {
						m = gates.Matrix2Q(in.Gate, in.Params...)
					} else {
						m = gates.Matrix2Q(in.Gate)
					}
					emit(event{t: l.Start, kind: opApply2Q, in: in, q0: q0, q1: q1, mat: m})
					emit(event{t: mid, kind: opEchoFlip, in: in, q0: q0})
					emit(event{t: end, kind: opGateErr2Q, in: in, q0: q0, q1: q1, errProb: errP})
				}
			default: // one-qubit
				q := in.Qubits[0]
				if in.Tag != "dd" {
					le.active[q] = true
				}
				t := l.Start + in.Time
				errP := r.Dev.Err1Q[q]
				if in.Tag == "twirl" {
					errP = 0 // merged into neighboring 1q gates at no cost
				}
				switch in.Gate {
				case gates.RZ:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: in.Params[0]})
				case gates.ZGate:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: math.Pi})
				case gates.S:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: math.Pi / 2})
				case gates.Sdg:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: -math.Pi / 2})
				case gates.ID:
					// no-op
				case gates.XGate, gates.XDD, gates.YGate:
					mat := gates.Matrix1Q(gates.XGate)
					y := false
					if in.Gate == gates.YGate {
						mat = gates.Matrix1Q(gates.YGate)
						y = true
					}
					emit(event{t: t, kind: opPauliX, in: in, q0: q, mat: mat, errProb: errP, yPhase: y})
				default:
					var m linalg.Matrix
					if len(in.Params) > 0 {
						m = gates.Matrix1Q(in.Gate, in.Params...)
					} else {
						m = gates.Matrix1Q(in.Gate)
					}
					emit(event{t: t, kind: opApply1Q, in: in, q0: q, mat: m, errProb: errP})
				}
			}
		}
		sort.SliceStable(le.events, func(i, j int) bool {
			if le.events[i].t != le.events[j].t {
				return le.events[i].t < le.events[j].t
			}
			return le.events[i].seq < le.events[j].seq
		})
		cp.layers = append(cp.layers, le)
	}
	return cp, nil
}

// Result aggregates sampled outcomes.
type Result struct {
	Counts map[string]int
	Shots  int
}

// Probability returns the empirical probability of bitstrings matching the
// pattern, where pattern[i] constrains classical bit i to '0' or '1' ('x'
// matches anything).
func (r Result) Probability(pattern string) float64 {
	if r.Shots == 0 {
		return 0
	}
	hits := 0
	for bits, n := range r.Counts {
		ok := true
		for i := 0; i < len(pattern) && i < len(bits); i++ {
			if pattern[i] != 'x' && pattern[i] != bits[i] {
				ok = false
				break
			}
		}
		if ok {
			hits += n
		}
	}
	return float64(hits) / float64(r.Shots)
}

func bitsKey(cbits []int) string {
	b := make([]byte, len(cbits))
	for i, v := range cbits {
		b[i] = byte('0' + v)
	}
	return string(b)
}

// Counts runs the circuit and returns measured bitstring counts (classical
// bit i at string position i).
func (r *Runner) Counts(c *circuit.Circuit) (Result, error) {
	cp, err := r.compile(c)
	if err != nil {
		return Result{}, err
	}
	res := Result{Counts: map[string]int{}, Shots: r.Cfg.Shots}
	keys := make([]string, r.Cfg.Shots)
	r.forEachShot(func(i int, s *shot) {
		s.run(cp)
		keys[i] = bitsKey(s.cbits)
	}, cp)
	for _, k := range keys {
		res.Counts[k]++
	}
	return res, nil
}

// Expectations runs the circuit (which must not contain measurement of the
// observable qubits if exact expectations are desired) and returns the mean
// over noise trajectories of the exact expectation value of each observable
// on the final state.
func (r *Runner) Expectations(c *circuit.Circuit, obs []ObsSpec) ([]float64, error) {
	cp, err := r.compile(c)
	if err != nil {
		return nil, err
	}
	sums := make([][]float64, r.Cfg.Shots)
	r.forEachShot(func(i int, s *shot) {
		s.run(cp)
		s.flushAll()
		vals := make([]float64, len(obs))
		for j, o := range obs {
			vals[j] = o.eval(s.psi)
		}
		sums[i] = vals
	}, cp)
	out := make([]float64, len(obs))
	for _, vals := range sums {
		for j, v := range vals {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(r.Cfg.Shots)
	}
	return out, nil
}

// FinalState runs a single trajectory (shot 0) and returns the final
// statevector with all pending coherent phases applied. For configs without
// stochastic channels the result is deterministic; with them it is one
// random trajectory.
func (r *Runner) FinalState(c *circuit.Circuit) (linalg.Vector, error) {
	cp, err := r.compile(c)
	if err != nil {
		return nil, err
	}
	s := r.newShot(cp, r.Cfg.Seed*1000003+13)
	s.run(cp)
	s.flushAll()
	return s.psi, nil
}

// ObsSpec is a Pauli observable given as a label per qubit, e.g. {0:"X",
// 5:"X"} for <X0 X5>.
type ObsSpec map[int]byte

func (o ObsSpec) eval(psi linalg.Vector) float64 {
	w := psi.Copy()
	for q, p := range o {
		switch p {
		case 'X':
			w.Apply1Q(gates.Matrix1Q(gates.XGate), q)
		case 'Y':
			w.Apply1Q(gates.Matrix1Q(gates.YGate), q)
		case 'Z':
			w.Apply1Q(gates.Matrix1Q(gates.ZGate), q)
		case 'I':
		default:
			panic(fmt.Sprintf("sim: invalid observable label %q", p))
		}
	}
	ip := linalg.Inner(psi, w)
	return real(ip)
}
