// Package sim is the noisy device-level simulator that substitutes for the
// paper's IBM hardware. It executes scheduled layered circuits on a
// statevector while tracking every coherent crosstalk channel the paper
// characterizes — always-on ZZ (Eq. 1), spectator Z, AC Stark shifts,
// charge-parity +/-delta terms (Eq. 6), NNN collision ZZ — plus stochastic
// channels (T1, T2, quasi-static low-frequency dephasing, depolarizing gate
// errors, readout errors).
//
// Coherent Z/ZZ phases are diagonal, so they are accumulated analytically in
// a phase accumulator and flushed into the statevector lazily, only before
// non-diagonal operations on the affected qubits. X-type pulses (DD pulses,
// twirl Paulis, the internal echo of an ECR) flip the accumulator signs,
// which reproduces the toggling-frame physics exactly for instantaneous
// pulses. The ECR gate executes as its physical sequence
// ZX(pi/4) -> X(ctrl) -> ZX(-pi/4) so that echo alignment effects (paper
// Fig. 3, cases II-IV) emerge from the dynamics rather than being assumed.
package sim

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/linalg"
	"casq/internal/obs"
)

// Shared parameter slices for the memoized ECR decomposition.
var (
	zxPlusQuarter  = []float64{math.Pi / 4}
	zxMinusQuarter = []float64{-math.Pi / 4}
)

// Engine is the simulation-backend contract shared by the statevector
// Runner and the stabilizer/Pauli-frame engine (internal/stab). Both take
// a compiled, scheduled circuit and produce sampled bitstring counts or
// trajectory-averaged Pauli expectation values; the executor dispatches
// between them per job (internal/exec).
type Engine interface {
	Counts(c *circuit.Circuit) (Result, error)
	Expectations(c *circuit.Circuit, obs []ObsSpec) ([]float64, error)
}

// MaxQubits is the largest circuit width the statevector engine accepts:
// a 2^n-amplitude state costs 16*2^n bytes per shot worker, so beyond
// this the executor must route the job to the stabilizer engine instead
// of letting the allocation take the process down.
const MaxQubits = 26

// Config toggles the noise channels and sets sampling parameters.
type Config struct {
	Shots   int
	Seed    int64
	Workers int // 0 = GOMAXPROCS

	EnableZZ          bool // always-on ZZ + spectator Z (Eq. 1)
	EnableStark       bool // AC Stark shift on neighbors of driven qubits
	EnableParity      bool // charge-parity +/-delta Z (Eq. 6)
	EnableQuasistatic bool // per-shot Gaussian low-frequency Z detuning
	EnableT1T2        bool // Markovian amplitude damping and dephasing
	EnableGateErr     bool // depolarizing error per physical gate
	EnableReadoutErr  bool // assignment error on recorded bits

	// Tracer records engine-level spans (whole-run and per-shot-block
	// timings); nil disables tracing at zero cost. Lane is the tracer
	// lane spans render on — the executor assigns one per instance.
	// Neither affects simulation results.
	Tracer *obs.Tracer
	Lane   int
}

// DefaultConfig enables every channel with a moderate shot count.
func DefaultConfig() Config {
	return Config{
		Shots:             256,
		Seed:              7,
		EnableZZ:          true,
		EnableStark:       true,
		EnableParity:      true,
		EnableQuasistatic: true,
		EnableT1T2:        true,
		EnableGateErr:     true,
		EnableReadoutErr:  true,
	}
}

// CoherentOnly returns a config with only the deterministic coherent
// channels enabled (useful for validating suppression passes exactly).
func CoherentOnly(shots int) Config {
	return Config{
		Shots:       shots,
		Seed:        7,
		EnableZZ:    true,
		EnableStark: true,
	}
}

// Ideal returns a noiseless config (single shot: the evolution is
// deterministic).
func Ideal() Config { return Config{Shots: 1, Seed: 1} }

type opKind int

const (
	opApply1Q  opKind = iota // non-diagonal 1q matrix (flush q first)
	opPauliX                 // X/Y pulse: apply matrix + flip accumulators
	opVirtualZ               // Rz/Z/S/Sdg: add angle to accumulator
	opApply2Q                // non-diagonal 2q matrix (flush pair first)
	opDiagRZZ                // Rzz: add angle to pair accumulator
	opEchoFlip               // ghost echo: flip accumulators of q0 only
	opGateErr1Q
	opGateErr2Q
	opMeasure
)

type event struct {
	t       float64 // absolute time, ns
	seq     int
	kind    opKind
	in      *circuit.Instruction
	q0      int
	q1      int
	mat     linalg.Matrix
	angle   float64
	errProb float64
	edge    int // edge index for opDiagRZZ
	yPhase  bool
}

type layerExec struct {
	start, dur float64
	events     []event
	rotary     []bool
	active     []bool
	driven     []bool
	gatePair   []bool // per edge index
}

type starkTerm struct {
	src, dst int
	w        float64 // rad/ns
}

// Runner executes circuits on a device under a noise config.
type Runner struct {
	Dev *device.Device
	Cfg Config

	// Compilation cache: the Runner memoizes the most recent circuit's
	// compilation, keyed by pointer identity plus content fingerprints of
	// the circuit and of the compile-relevant device calibration, so
	// in-place mutation of either between runs is detected. Sweeps that
	// re-run the same scheduled circuit (every figure in the paper) skip
	// recompiling per call; the compiled form is immutable during
	// execution, so cached reuse is safe under concurrent
	// Counts/Expectations.
	mu       sync.Mutex
	cachedC  *circuit.Circuit
	cachedFP uint64
	cached   *compiled
}

// New returns a Runner.
func New(dev *device.Device, cfg Config) *Runner {
	return &Runner{Dev: dev, Cfg: cfg}
}

type compiled struct {
	nq, ncb int
	edges   []device.Edge
	omega   []float64 // rad/ns per edge
	edgeIdx map[device.Edge]int
	qEdges  [][]int
	starks  []starkTerm
	layers  []layerExec
}

const hzToRadPerNs = 2 * math.Pi * 1e-9

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// deviceFingerprint hashes the device calibration that compile bakes into
// the compiled form (topology, ZZ rates, Stark terms, gate-error
// probabilities), so in-place device mutation between runs — the Fig. 8
// sweep retunes dev.ZZ per point — invalidates the Runner's cache. Map
// entries are combined commutatively so iteration order cannot matter.
func deviceFingerprint(d *device.Device) uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	pair := func(a, b, c uint64) uint64 {
		x := uint64(fnvOffset)
		for _, v := range [3]uint64{a, b, c} {
			for i := 0; i < 8; i++ {
				x ^= v & 0xff
				x *= fnvPrime
				v >>= 8
			}
		}
		return x
	}
	mix(uint64(d.NQubits))
	mix(uint64(len(d.Edges)))
	mix(uint64(len(d.NNNEdges)))
	for _, e := range d.Edges {
		mix(pair(uint64(e.A), uint64(e.B), 0))
	}
	for _, e := range d.NNNEdges {
		mix(pair(uint64(e.A), uint64(e.B), 0))
	}
	var acc uint64
	for e, v := range d.ZZ {
		acc += pair(uint64(e.A), uint64(e.B), math.Float64bits(v))
	}
	mix(acc)
	acc = 0
	for dd, v := range d.Stark {
		acc += pair(uint64(dd.Src), uint64(dd.Dst), math.Float64bits(v))
	}
	mix(acc)
	acc = 0
	for e, v := range d.Err2Q {
		acc += pair(uint64(e.A), uint64(e.B), math.Float64bits(v))
	}
	mix(acc)
	for _, v := range d.Err1Q {
		mix(math.Float64bits(v))
	}
	return h
}

// fingerprint hashes every field of the circuit that compilation depends
// on (FNV-1a, allocation-free), so the Runner's compile cache detects
// in-place mutation even at the same pointer.
func fingerprint(c *circuit.Circuit) uint64 {
	const (
		offset = fnvOffset
		prime  = fnvPrime
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mixF := func(f float64) { mix(math.Float64bits(f)) }
	mixS := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mix(uint64(c.NQubits))
	mix(uint64(c.NCBits))
	mix(uint64(len(c.Layers)))
	for li := range c.Layers {
		l := &c.Layers[li]
		mix(uint64(l.Kind))
		mixF(l.Start)
		mixF(l.Duration)
		mix(uint64(len(l.Instrs)))
		for ii := range l.Instrs {
			in := &l.Instrs[ii]
			mixS(string(in.Gate))
			for _, q := range in.Qubits {
				mix(uint64(q))
			}
			for _, p := range in.Params {
				mixF(p)
			}
			mix(uint64(in.CBit))
			if in.Cond != nil {
				mix(uint64(in.Cond.Bit))
				mix(uint64(in.Cond.Value))
			}
			mixS(in.Tag)
			mixF(in.Time)
		}
	}
	return h
}

// compiled returns the circuit's compilation, reusing the cached one when
// neither the circuit nor the compile-relevant device calibration has
// changed since the previous call.
func (r *Runner) compiled(c *circuit.Circuit) (*compiled, error) {
	fp := fingerprint(c) ^ deviceFingerprint(r.Dev)
	r.mu.Lock()
	if r.cachedC == c && r.cachedFP == fp {
		cp := r.cached
		r.mu.Unlock()
		return cp, nil
	}
	r.mu.Unlock()
	cp, err := r.compile(c)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cachedC, r.cachedFP, r.cached = c, fp, cp
	r.mu.Unlock()
	return cp, nil
}

// matKey memoizes gate matrices within one compilation: repeated structures
// (every Trotter step uses the same Ucan/ECR parameters) build each matrix
// once instead of per instruction.
type matKey struct {
	g          gates.Kind
	nq, np     int
	p0, p1, p2 float64
}

// Runner implements Engine.
var _ Engine = (*Runner)(nil)

func (r *Runner) compile(c *circuit.Circuit) (*compiled, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.NQubits > MaxQubits {
		return nil, fmt.Errorf("sim: %d qubits exceed the statevector limit of %d; use the stabilizer engine (internal/stab) for full-scale twirled circuits", c.NQubits, MaxQubits)
	}
	cp := &compiled{nq: c.NQubits, ncb: c.NCBits, edgeIdx: map[device.Edge]int{}}
	addEdge := func(e device.Edge, hz float64) int {
		if i, ok := cp.edgeIdx[e]; ok {
			return i
		}
		i := len(cp.edges)
		cp.edges = append(cp.edges, e)
		cp.omega = append(cp.omega, hz*hzToRadPerNs)
		cp.edgeIdx[e] = i
		return i
	}
	for _, e := range r.Dev.AllCrosstalkEdges() {
		addEdge(e, r.Dev.ZZ[e])
	}
	// Register virtual edges used by diagonal RZZ corrections on pairs that
	// have no calibrated coupling.
	for _, l := range c.Layers {
		for _, in := range l.Instrs {
			if in.Gate == gates.RZZ {
				e := device.NewEdge(in.Qubits[0], in.Qubits[1])
				if _, ok := cp.edgeIdx[e]; !ok {
					addEdge(e, 0)
				}
			}
		}
	}
	cp.qEdges = make([][]int, cp.nq)
	for i, e := range cp.edges {
		cp.qEdges[e.A] = append(cp.qEdges[e.A], i)
		cp.qEdges[e.B] = append(cp.qEdges[e.B], i)
	}
	for d, hz := range r.Dev.Stark {
		if hz != 0 {
			cp.starks = append(cp.starks, starkTerm{d.Src, d.Dst, hz * hzToRadPerNs})
		}
	}
	sort.Slice(cp.starks, func(i, j int) bool {
		if cp.starks[i].src != cp.starks[j].src {
			return cp.starks[i].src < cp.starks[j].src
		}
		return cp.starks[i].dst < cp.starks[j].dst
	})

	memo := map[matKey]linalg.Matrix{}
	matrix := func(nq int, g gates.Kind, params []float64) linalg.Matrix {
		k := matKey{g: g, nq: nq, np: len(params)}
		if len(params) > 3 {
			// Uncacheable arity; build directly.
			if nq == 1 {
				return gates.Matrix1Q(g, params...)
			}
			return gates.Matrix2Q(g, params...)
		}
		switch len(params) {
		case 3:
			k.p2 = params[2]
			fallthrough
		case 2:
			k.p1 = params[1]
			fallthrough
		case 1:
			k.p0 = params[0]
		}
		if m, ok := memo[k]; ok {
			return m
		}
		var m linalg.Matrix
		if nq == 1 {
			m = gates.Matrix1Q(g, params...)
		} else {
			m = gates.Matrix2Q(g, params...)
		}
		memo[k] = m
		return m
	}

	for li := range c.Layers {
		l := &c.Layers[li]
		le := layerExec{
			start:    l.Start,
			dur:      l.Duration,
			rotary:   make([]bool, cp.nq),
			active:   make([]bool, cp.nq),
			driven:   make([]bool, cp.nq),
			gatePair: make([]bool, len(cp.edges)),
			// Worst case is four events per instruction (ECR/RZZ), so one
			// allocation covers the layer.
			events: make([]event, 0, 4*len(l.Instrs)),
		}
		seq := 0
		emit := func(ev event) {
			ev.seq = seq
			seq++
			le.events = append(le.events, ev)
		}
		for ii := range l.Instrs {
			in := &l.Instrs[ii]
			switch {
			case in.Gate == gates.Delay || in.Gate == gates.Barrier:
				continue
			case in.Gate == gates.Measure:
				le.active[in.Qubits[0]] = true
				emit(event{t: l.Start, kind: opMeasure, in: in, q0: in.Qubits[0]})
			case gates.NumQubits(in.Gate) == 2:
				q0, q1 := in.Qubits[0], in.Qubits[1]
				le.active[q0], le.active[q1] = true, true
				le.driven[q0], le.driven[q1] = true, true
				le.rotary[q1] = true
				if i, ok := cp.edgeIdx[device.NewEdge(q0, q1)]; ok {
					le.gatePair[i] = true
				}
				errP := 0.0
				if p, ok := r.Dev.Err2Q[device.NewEdge(q0, q1)]; ok {
					errP = p
				} else {
					errP = 5e-3
				}
				mid := l.Start + l.Duration/2
				end := l.Start + l.Duration
				switch in.Gate {
				case gates.ECR:
					emit(event{t: l.Start, kind: opApply2Q, in: in, q0: q0, q1: q1, mat: matrix(2, gates.ZX, zxPlusQuarter)})
					emit(event{t: mid, kind: opPauliX, in: in, q0: q0, mat: matrix(1, gates.XGate, nil)})
					emit(event{t: mid, kind: opApply2Q, in: in, q0: q0, q1: q1, mat: matrix(2, gates.ZX, zxMinusQuarter)})
					emit(event{t: end, kind: opGateErr2Q, in: in, q0: q0, q1: q1, errProb: errP})
				case gates.RZZ:
					ei := cp.edgeIdx[device.NewEdge(q0, q1)]
					// A pulse-stretched RZZ carries an X2 echo on the control
					// (pulses at T/2 and T): spectator couplings average out
					// while the frame returns to identity, so phases pending
					// from earlier layers are not conjugated. The gate's own
					// calibrated ZZ angle takes effect at completion.
					emit(event{t: mid, kind: opEchoFlip, in: in, q0: q0})
					emit(event{t: end, kind: opEchoFlip, in: in, q0: q0})
					emit(event{t: end, kind: opDiagRZZ, in: in, q0: q0, q1: q1, angle: in.Params[0], edge: ei})
					// Its error scales with the stretch fraction relative to
					// a full ECR.
					frac := math.Abs(in.Params[0]) / (math.Pi / 2)
					if frac > 1 {
						frac = 1
					}
					emit(event{t: end, kind: opGateErr2Q, in: in, q0: q0, q1: q1, errProb: errP * frac})
				default: // CX, Ucan, ZX, SWAP: logical unit with ghost echo
					emit(event{t: l.Start, kind: opApply2Q, in: in, q0: q0, q1: q1, mat: matrix(2, in.Gate, in.Params)})
					emit(event{t: mid, kind: opEchoFlip, in: in, q0: q0})
					emit(event{t: end, kind: opGateErr2Q, in: in, q0: q0, q1: q1, errProb: errP})
				}
			default: // one-qubit
				q := in.Qubits[0]
				if in.Tag != "dd" {
					le.active[q] = true
				}
				t := l.Start + in.Time
				errP := r.Dev.Err1Q[q]
				if in.Tag == "twirl" {
					errP = 0 // merged into neighboring 1q gates at no cost
				}
				switch in.Gate {
				case gates.RZ:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: in.Params[0]})
				case gates.ZGate:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: math.Pi})
				case gates.S:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: math.Pi / 2})
				case gates.Sdg:
					emit(event{t: t, kind: opVirtualZ, in: in, q0: q, angle: -math.Pi / 2})
				case gates.ID:
					// no-op
				case gates.XGate, gates.XDD, gates.YGate:
					mat := matrix(1, gates.XGate, nil)
					y := false
					if in.Gate == gates.YGate {
						mat = matrix(1, gates.YGate, nil)
						y = true
					}
					emit(event{t: t, kind: opPauliX, in: in, q0: q, mat: mat, errProb: errP, yPhase: y})
				default:
					emit(event{t: t, kind: opApply1Q, in: in, q0: q, mat: matrix(1, in.Gate, in.Params), errProb: errP})
				}
			}
		}
		slices.SortFunc(le.events, func(a, b event) int {
			if a.t != b.t {
				return cmp.Compare(a.t, b.t)
			}
			return cmp.Compare(a.seq, b.seq)
		})
		cp.layers = append(cp.layers, le)
	}
	return cp, nil
}

// Result aggregates sampled outcomes.
type Result struct {
	Counts map[string]int
	Shots  int
}

// Probability returns the empirical probability of bitstrings matching the
// pattern, where pattern[i] constrains classical bit i to '0' or '1' ('x'
// matches anything). A constrained position beyond the end of a measured
// bitstring is a non-match (the pattern demands a bit that was never
// recorded); measured bits beyond the end of the pattern are unconstrained
// and match.
func (r Result) Probability(pattern string) float64 {
	if r.Shots == 0 {
		return 0
	}
	hits := 0
	for bits, n := range r.Counts {
		if matchesPattern(pattern, bits) {
			hits += n
		}
	}
	return float64(hits) / float64(r.Shots)
}

func matchesPattern(pattern, bits string) bool {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == 'x' {
			continue
		}
		if i >= len(bits) || pattern[i] != bits[i] {
			return false
		}
	}
	return true
}

// BitsKey formats measured classical bits as the Counts map key
// (classical bit i at string position i). Shared with the stabilizer
// engine so both backends key merged counts identically.
func BitsKey(cbits []int) string {
	b := make([]byte, len(cbits))
	for i, v := range cbits {
		b[i] = byte('0' + v)
	}
	return string(b)
}

// span opens an engine-level span on the runner's configured tracer
// (no-op Span when tracing is disabled). A helper rather than inline
// calls because some Runner methods take a parameter named obs, which
// shadows the package name.
func (r *Runner) span(name string) obs.Span {
	if !r.Cfg.Tracer.Enabled() {
		return obs.Span{}
	}
	return r.Cfg.Tracer.Start(name).WithLane(r.Cfg.Lane)
}

// Counts runs the circuit and returns measured bitstring counts (classical
// bit i at string position i).
func (r *Runner) Counts(c *circuit.Circuit) (Result, error) {
	sp := r.span("sim.counts")
	defer sp.End()
	cp, err := r.compiled(c)
	if err != nil {
		return Result{}, err
	}
	shots := r.numShots()
	res := Result{Counts: map[string]int{}, Shots: shots}
	keys := make([]string, shots)
	r.forEachShot(func(i int, s *shot) {
		s.run(cp)
		keys[i] = BitsKey(s.cbits)
	}, cp)
	for _, k := range keys {
		res.Counts[k]++
	}
	return res, nil
}

// Expectations runs the circuit (which must not contain measurement of the
// observable qubits if exact expectations are desired) and returns the mean
// over noise trajectories of the exact expectation value of each observable
// on the final state.
func (r *Runner) Expectations(c *circuit.Circuit, obs []ObsSpec) ([]float64, error) {
	sp := r.span("sim.expectations")
	defer sp.End()
	cp, err := r.compiled(c)
	if err != nil {
		return nil, err
	}
	plans := make([]obsPlan, len(obs))
	for j, o := range obs {
		plans[j] = o.plan()
	}
	shots := r.numShots()
	nobs := len(obs)
	// Flat per-shot value matrix: workers write disjoint rows, then the
	// reduction runs in shot-index order so the floating-point sum is
	// independent of scheduling.
	sums := make([]float64, shots*nobs)
	r.forEachShot(func(i int, s *shot) {
		s.run(cp)
		s.flushAll()
		row := sums[i*nobs : (i+1)*nobs]
		for j := range plans {
			row[j] = plans[j].eval(s)
		}
	}, cp)
	out := make([]float64, nobs)
	for i := 0; i < shots; i++ {
		for j := 0; j < nobs; j++ {
			out[j] += sums[i*nobs+j]
		}
	}
	for j := range out {
		out[j] /= float64(shots)
	}
	return out, nil
}

// FinalState runs a single trajectory (shot 0) and returns the final
// statevector with all pending coherent phases applied. For configs without
// stochastic channels the result is deterministic; with them it is one
// random trajectory.
func (r *Runner) FinalState(c *circuit.Circuit) (linalg.Vector, error) {
	cp, err := r.compiled(c)
	if err != nil {
		return nil, err
	}
	s := r.newShot(cp)
	s.reset(r.shotSeed(0))
	s.run(cp)
	s.flushAll()
	return s.psi, nil
}

// ObsSpec is a Pauli observable given as a label per qubit, e.g. {0:"X",
// 5:"X"} for <X0 X5>.
type ObsSpec map[int]byte

// obsOp is one non-diagonal factor of an observable.
type obsOp struct {
	q   int
	mat linalg.Matrix
}

// obsPlan is a compiled observable: the Z factors folded into a parity
// mask (they act diagonally on the basis) plus the X/Y factors in qubit
// order. Plans are computed once per Expectations call so the per-shot
// evaluation stays allocation-free and independent of map iteration order.
type obsPlan struct {
	zMask int
	ops   []obsOp
}

func (o ObsSpec) plan() obsPlan {
	var p obsPlan
	qs := make([]int, 0, len(o))
	for q := range o {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		switch o[q] {
		case 'X':
			p.ops = append(p.ops, obsOp{q: q, mat: gates.Matrix1Q(gates.XGate)})
		case 'Y':
			p.ops = append(p.ops, obsOp{q: q, mat: gates.Matrix1Q(gates.YGate)})
		case 'Z':
			p.zMask |= 1 << q
		case 'I':
		default:
			panic(fmt.Sprintf("sim: invalid observable label %q", o[q]))
		}
	}
	return p
}

// eval returns <psi| P |psi> for the planned Pauli observable. Z-only
// observables are evaluated diagonally — a single pass over |psi|^2 with a
// parity sign, no copy. Observables with X/Y factors apply them to the
// shot's scratch vector (reused across observables and shots) and fold the
// Z factors into the sign of the inner-product accumulation.
func (p obsPlan) eval(s *shot) float64 {
	psi := s.psi
	if p.zMask >= len(psi) {
		// An out-of-range X/Y qubit panics inside Apply1Q; give Z labels
		// the same loud failure instead of silently acting as identity.
		panic(fmt.Sprintf("sim: observable Z qubit out of range for %d-amplitude state (mask %#x)", len(psi), p.zMask))
	}
	if len(p.ops) == 0 {
		sum := 0.0
		for b, a := range psi {
			v := real(a)*real(a) + imag(a)*imag(a)
			if bits.OnesCount(uint(b&p.zMask))&1 == 1 {
				sum -= v
			} else {
				sum += v
			}
		}
		return sum
	}
	w := s.obsScratch()
	copy(w, psi)
	for _, op := range p.ops {
		w.Apply1Q(op.mat, op.q)
	}
	sum := 0.0
	for b := range psi {
		a, x := psi[b], w[b]
		re := real(a)*real(x) + imag(a)*imag(x) // real(conj(a) * x)
		if p.zMask != 0 && bits.OnesCount(uint(b&p.zMask))&1 == 1 {
			re = -re
		}
		sum += re
	}
	return sum
}

// eval on the raw spec builds a throwaway plan; kept for tests and
// callers holding a bare statevector.
func (o ObsSpec) eval(psi linalg.Vector) float64 {
	p := o.plan()
	s := &shot{psi: psi}
	return p.eval(s)
}
