package sim

import (
	"math/rand"
	"testing"
)

// TestPackedBitsAppendChainPopcounts is the correlation-popcount
// regression for Append tail masking: chained appends of records whose
// shot counts are not multiples of 64 — each operand carrying planted
// garbage beyond its last valid shot — must keep Ones and OnesXor totals
// exactly equal to a per-shot scalar rebuild. This is the exact class of
// bug the correl estimator's pair counts would silently absorb: a single
// leaked tail bit shifts every covariance downstream of it.
func TestPackedBitsAppendChainPopcounts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	chains := [][]int{
		{63, 1, 65},
		{5, 59, 64, 7},
		{1, 1, 1, 1, 1},
		{100, 29, 130, 3},
		{64, 63, 62, 61},
	}
	for _, chain := range chains {
		// Scalar reference: the concatenated bit sequences per plane.
		var ref [2][]int
		acc := NewPackedBits(2, 0)
		for _, shots := range chain {
			nxt := NewPackedBits(2, shots)
			for c := 0; c < 2; c++ {
				for s := 0; s < shots; s++ {
					v := rng.Intn(2)
					nxt.Set(c, s, v)
					ref[c] = append(ref[c], v)
				}
				// Plant garbage in the invalid region of the last word.
				if w := len(nxt.Planes[c]); w > 0 && shots%ShotBlockSize != 0 {
					nxt.Planes[c][w-1] |= ^uint64(0) << uint(shots%ShotBlockSize)
				}
			}
			acc = acc.Append(nxt)

			wantOnes := [2]int{}
			wantXor := 0
			for s := range ref[0] {
				wantOnes[0] += ref[0][s]
				wantOnes[1] += ref[1][s]
				wantXor += ref[0][s] ^ ref[1][s]
			}
			if acc.Shots != len(ref[0]) {
				t.Fatalf("chain %v: shots = %d, want %d", chain, acc.Shots, len(ref[0]))
			}
			for c := 0; c < 2; c++ {
				if got := acc.Ones(c); got != wantOnes[c] {
					t.Fatalf("chain %v after %d shots: Ones(%d) = %d, want %d (tail leak)",
						chain, acc.Shots, c, got, wantOnes[c])
				}
			}
			if got := acc.OnesXor(0, 1); got != wantXor {
				t.Fatalf("chain %v after %d shots: OnesXor = %d, want %d (tail leak)",
					chain, acc.Shots, got, wantXor)
			}
			// Every accumulated bit must still be addressable per shot.
			for c := 0; c < 2; c++ {
				for s, want := range ref[c] {
					if acc.Bit(c, s) != want {
						t.Fatalf("chain %v: bit (%d,%d) = %d, want %d", chain, c, s, acc.Bit(c, s), want)
					}
				}
			}
		}
	}
}
