// Package caec implements Context-Aware Error Compensation (paper
// Algorithm 2). The pass walks a scheduled, twirled (and possibly
// DD-decorated) circuit layer by layer, computes the coherent Z/ZZ error
// that survives each layer from the device calibration and the layer's
// pulse context (via the toggling-frame integrals), and then:
//
//   - Z errors are compensated immediately with virtual Rz corrections —
//     free on hardware, inserted as zero-duration correction layers;
//   - ZZ errors accumulate in a compensation dictionary that is commuted
//     through twirl layers (sign flips when the twirl Paulis anticommute
//     with ZZ) and absorbed into downstream two-qubit gates at no cost when
//     they are RZZ or Ucan rotations (gamma -> gamma - theta/2) or CX
//     (which converts the ZZ into a free virtual Rz on the target);
//   - compensations that cannot be absorbed are materialized as
//     pulse-stretched native RZZ gates (short duration, proportionally
//     small error), or — next to a mid-circuit measurement — as
//     measurement-conditioned virtual Rz corrections appended to the
//     feed-forward operation (paper Fig. 9).
package caec

import (
	"fmt"
	"math"

	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/sched"
	"casq/internal/toggling"
)

// Options configure the pass.
type Options struct {
	IncludeStark bool
	// AbsorbOnly prevents materializing explicit RZZ corrections; pending
	// ZZ compensations that cannot be absorbed are dropped (counted in
	// Stats.Dropped).
	AbsorbOnly bool
	// MinAngle ignores compensation angles below this threshold (radians).
	MinAngle float64
	// MaterializeMin is the smallest pending ZZ angle (radians) worth an
	// explicit pulse-stretched RZZ correction gate. Compensations below it
	// that cannot be absorbed for free are dropped: the correction gate's
	// own error and the idle window it opens on the rest of the device
	// would cost more than the residual coherent error it removes. Zero
	// materializes everything (exact coherent cancellation).
	MaterializeMin float64
	// FFTime is the feed-forward duration (ns) the compiler assumes when
	// computing measurement-conditioned corrections; < 0 means use the
	// device calibration (DurFF). The Fig. 9 experiment scans this value.
	FFTime float64
}

// DefaultOptions enables Stark compensation and native-RZZ materialization
// for pending angles above ~0.1 rad.
func DefaultOptions() Options {
	return Options{IncludeStark: true, MinAngle: 1e-9, MaterializeMin: 0.1, FFTime: -1}
}

// Stats reports what the pass did.
type Stats struct {
	VirtualRZ     int // free virtual Rz corrections inserted
	AbsorbedUcan  int // ZZ compensations absorbed into Ucan/RZZ angles
	AbsorbedCX    int // ZZ compensations converted to virtual Rz through CX
	InsertedRZZ   int // pulse-stretched native RZZ corrections materialized
	Conditional   int // measurement-conditioned corrections appended
	SignFlips     int // compensation sign flips through twirl Paulis
	Dropped       int
	DroppedAngles float64
}

// Apply runs CA-EC over the circuit, returning a new compiled circuit
// (rescheduled) and statistics. The input must be scheduled.
func Apply(c *circuit.Circuit, dev *device.Device, opts Options) (*circuit.Circuit, Stats, error) {
	if opts.MinAngle <= 0 {
		opts.MinAngle = 1e-9
	}
	p := &pass{
		dev:    dev,
		opts:   opts,
		out:    circuit.New(c.NQubits, c.NCBits),
		comp2q: map[device.Edge]float64{},
	}
	for li := range c.Layers {
		if err := p.processLayer(&c.Layers[li]); err != nil {
			return nil, p.stats, fmt.Errorf("caec: layer %d: %w", li, err)
		}
	}
	// Materialize anything still pending at the end of the circuit. Each
	// correction layer idles the rest of the device briefly and can leave
	// new (much smaller) pending terms; a few rounds converge.
	for iter := 0; iter < 3 && len(p.comp2q) > 0; iter++ {
		p.materializeAll()
	}
	sched.Schedule(p.out, dev)
	return p.out, p.stats, nil
}

type pass struct {
	dev       *device.Device
	opts      Options
	out       *circuit.Circuit
	comp2q    map[device.Edge]float64 // pending ZZ *error* angle per edge
	collapsed map[int]bool            // qubits already measured mid-circuit
	stats     Stats
}

func (p *pass) isCollapsed(q int) bool { return p.collapsed != nil && p.collapsed[q] }

func (p *pass) processLayer(l *circuit.Layer) error {
	switch l.Kind {
	case circuit.TwirlLayer:
		p.commuteThroughTwirl(l)
		p.out.Layers = append(p.out.Layers, l.Clone())
		return nil
	case circuit.OneQubitLayer:
		p.out.Layers = append(p.out.Layers, l.Clone())
		p.emitLayerErrors(l)
		return nil
	case circuit.TwoQubitLayer:
		return p.processTwoQubitLayer(l)
	case circuit.MeasureLayer:
		return p.processMeasureLayer(l)
	}
	p.out.Layers = append(p.out.Layers, l.Clone())
	return nil
}

// commuteThroughTwirl moves the pending ZZ compensations past a twirl
// layer: the sign flips iff exactly one endpoint's Pauli anticommutes with
// Z (paper Fig. 1d).
func (p *pass) commuteThroughTwirl(l *circuit.Layer) {
	flips := map[int]bool{}
	for _, in := range l.Instrs {
		if in.Gate == gates.XGate || in.Gate == gates.YGate {
			flips[in.Qubits[0]] = true
		}
	}
	for e, v := range p.comp2q {
		if v == 0 {
			continue
		}
		if flips[e.A] != flips[e.B] {
			p.comp2q[e] = -v
			p.stats.SignFlips++
		}
	}
}

// processTwoQubitLayer first resolves pending ZZ compensations against the
// layer's gates (absorb, convert, or materialize), then appends the layer
// and accounts for the new errors it generates.
func (p *pass) processTwoQubitLayer(l *circuit.Layer) error {
	nl := l.Clone()
	gatesByEdge := map[device.Edge]*circuit.Instruction{}
	for i := range nl.Instrs {
		in := &nl.Instrs[i]
		if gates.NumQubits(in.Gate) == 2 {
			gatesByEdge[device.NewEdge(in.Qubits[0], in.Qubits[1])] = in
		}
	}

	// Operand roles: qubit -> (gate kind, operand index).
	type role struct {
		kind  gates.Kind
		first bool
	}
	roles := map[int]role{}
	for _, in := range nl.Instrs {
		if gates.NumQubits(in.Gate) == 2 {
			roles[in.Qubits[0]] = role{in.Gate, true}
			roles[in.Qubits[1]] = role{in.Gate, false}
		}
	}

	var afterZ []zCorr
	// classify decides what happens to a pending Rzz on edge e as it meets
	// this layer: absorbed into a gate on the same edge; carried through
	// (sign-conjugated by the ideal gates: ECR flips Z on its control,
	// CX/RZZ preserve it); or blocked (gate targets and Ucan operands turn
	// ZZ into non-diagonal operators) and hence materialized before the
	// layer.
	classify := func(e device.Edge, theta float64) (carrySign float64, blocked bool) {
		carrySign = 1
		for _, q := range []int{e.A, e.B} {
			r, ok := roles[q]
			if !ok {
				continue
			}
			switch {
			case r.kind == gates.RZZ:
				// diagonal: commutes on either operand
			case r.kind == gates.Ucan:
				blocked = true
			case r.first: // control of ECR/CX/ZX/SWAP
				switch r.kind {
				case gates.ECR:
					carrySign = -carrySign // ECR Z_c ECR^dag = -Z_c
				case gates.CX:
					// CX preserves Z on its control
				default:
					blocked = true
				}
			default: // target of ECR/CX/...: Z_t maps to a non-local Pauli
				blocked = true
			}
		}
		return carrySign, blocked
	}

	resolve := func(e device.Edge, theta float64) (done bool) {
		if in, ok := gatesByEdge[e]; ok {
			switch in.Gate {
			case gates.Ucan:
				_, _, g := gates.AbsorbRzzIntoUcan(in.Params[0], in.Params[1], in.Params[2], theta)
				in.Params[2] = g
				p.stats.AbsorbedUcan++
				delete(p.comp2q, e)
				return true
			case gates.RZZ:
				in.Params[0] = gates.AbsorbRzzIntoRzz(in.Params[0], theta)
				p.stats.AbsorbedUcan++
				delete(p.comp2q, e)
				return true
			case gates.CX:
				// CX . Rzz(theta) = (I x Rz(theta)) . CX: the pending ZZ
				// becomes a free virtual Rz on the target after the gate.
				afterZ = append(afterZ, zCorr{q: in.Qubits[1], errAngle: theta})
				p.stats.AbsorbedCX++
				delete(p.comp2q, e)
				return true
			}
		}
		return false
	}

	var mustMaterialize []device.Edge
	processed := map[device.Edge]bool{}
	for e, theta := range p.comp2q {
		processed[e] = true
		if math.Abs(theta) < p.opts.MinAngle {
			delete(p.comp2q, e)
			continue
		}
		if resolve(e, theta) {
			continue
		}
		sign, blocked := classify(e, theta)
		if blocked {
			mustMaterialize = append(mustMaterialize, e)
			continue
		}
		if sign < 0 {
			p.comp2q[e] = -theta
			p.stats.SignFlips++
		}
	}
	p.materializePending(mustMaterialize)
	// The correction layers just inserted idle the rest of the device for a
	// short window and may have produced new (small) pending terms that also
	// sit before this gate layer. Give them the same treatment, but drop
	// blocked ones instead of recursing into further correction layers.
	for e, theta := range p.comp2q {
		if processed[e] {
			continue
		}
		if math.Abs(theta) < p.opts.MinAngle {
			delete(p.comp2q, e)
			continue
		}
		if resolve(e, theta) {
			continue
		}
		sign, blocked := classify(e, theta)
		if blocked {
			p.stats.Dropped++
			p.stats.DroppedAngles += math.Abs(theta)
			delete(p.comp2q, e)
			continue
		}
		if sign < 0 {
			p.comp2q[e] = -theta
			p.stats.SignFlips++
		}
	}

	p.out.Layers = append(p.out.Layers, nl)
	p.emitLayerErrors(l)
	p.emitZCorrections(afterZ)
	return nil
}

type zCorr struct {
	q        int
	errAngle float64 // accumulated *error* angle; correction is its negative
}

// emitLayerErrors computes the surviving coherent error of the layer via
// the toggling integrals, immediately compensates the Z part with a virtual
// Rz layer, and adds the ZZ part to the pending dictionary.
func (p *pass) emitLayerErrors(l *circuit.Layer) {
	if l.Duration <= 0 {
		return
	}
	m := toggling.BuildLayerModel(l, p.dev)
	// Edges touching a collapsed (measured) qubit are handled once, by the
	// measurement-conditioned corrections; exclude them here.
	res := toggling.IntegrateFiltered(m, p.dev, p.opts.IncludeStark, func(e device.Edge) bool {
		return p.isCollapsed(e.A) || p.isCollapsed(e.B)
	})
	var zs []zCorr
	for q, phi := range res.PhiZ {
		if p.isCollapsed(q) {
			continue
		}
		zs = append(zs, zCorr{q: q, errAngle: phi})
	}
	p.emitZCorrections(zs)
	for e, phi := range res.PhiZZ {
		if p.isCollapsed(e.A) || p.isCollapsed(e.B) {
			continue
		}
		p.comp2q[e] += phi
	}
}

// emitZCorrections appends a zero-duration virtual-Rz layer undoing the
// given error angles, merging entries that target the same qubit.
func (p *pass) emitZCorrections(zs []zCorr) {
	byQubit := map[int]float64{}
	var order []int
	for _, z := range zs {
		if _, seen := byQubit[z.q]; !seen {
			order = append(order, z.q)
		}
		byQubit[z.q] += z.errAngle
	}
	sortInts(order)
	var corr *circuit.Layer
	for _, q := range order {
		angle := byQubit[q]
		if math.Abs(angle) < p.opts.MinAngle {
			continue
		}
		if corr == nil {
			p.out.Layers = append(p.out.Layers, circuit.Layer{Kind: circuit.OneQubitLayer})
			corr = &p.out.Layers[len(p.out.Layers)-1]
		}
		corr.Add(circuit.Instruction{
			Gate:   gates.RZ,
			Qubits: []int{q},
			Params: []float64{-angle},
			Tag:    "ec",
		})
		p.stats.VirtualRZ++
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// materializeAll flushes every pending ZZ compensation as explicit gates.
func (p *pass) materializeAll() {
	var edges []device.Edge
	for e := range p.comp2q {
		edges = append(edges, e)
	}
	p.materializePending(edges)
}

// materializePending inserts pulse-stretched native RZZ corrections for the
// listed edges, packing disjoint edges into shared layers.
func (p *pass) materializePending(edges []device.Edge) {
	var work []device.Edge
	for _, e := range edges {
		theta := p.comp2q[e]
		if math.Abs(theta) < p.opts.MinAngle {
			delete(p.comp2q, e)
			continue
		}
		if p.opts.AbsorbOnly || math.Abs(theta) < p.opts.MaterializeMin {
			p.stats.Dropped++
			p.stats.DroppedAngles += math.Abs(theta)
			delete(p.comp2q, e)
			continue
		}
		work = append(work, e)
	}
	// Greedy pack into layers of disjoint edges, deterministically ordered.
	for len(work) > 0 {
		layer := circuit.Layer{Kind: circuit.TwoQubitLayer}
		used := map[int]bool{}
		var rest []device.Edge
		sortEdges(work)
		for _, e := range work {
			if used[e.A] || used[e.B] {
				rest = append(rest, e)
				continue
			}
			used[e.A], used[e.B] = true, true
			layer.Add(circuit.Instruction{
				Gate:   gates.RZZ,
				Qubits: []int{e.A, e.B},
				Params: []float64{-p.comp2q[e]},
				Tag:    "ec",
			})
			p.stats.InsertedRZZ++
			delete(p.comp2q, e)
		}
		// The correction layer has nonzero duration itself, so the rest of
		// the device idles (and accumulates error) while it runs; account
		// for that too.
		layer.Duration = sched.LayerDuration(&layer, p.dev)
		p.out.Layers = append(p.out.Layers, layer)
		p.emitLayerErrors(&p.out.Layers[len(p.out.Layers)-1])
		work = rest
	}
}

func sortEdges(es []device.Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			a, b := es[j-1], es[j]
			if a.A < b.A || (a.A == b.A && a.B <= b.B) {
				break
			}
			es[j-1], es[j] = b, a
		}
	}
}

// processMeasureLayer handles mid-circuit measurement: pending ZZ touching
// measured qubits is materialized first; errors accumulated during the
// measurement + feed-forward window on edges adjacent to a measured qubit
// become measurement-conditioned virtual Rz corrections (paper Fig. 9);
// edges between unmeasured qubits accumulate normally.
func (p *pass) processMeasureLayer(l *circuit.Layer) error {
	measured := map[int]int{} // qubit -> classical bit
	for _, in := range l.Instrs {
		if in.Gate == gates.Measure {
			measured[in.Qubits[0]] = in.CBit
		}
	}
	var toMat []device.Edge
	for e, v := range p.comp2q {
		if v != 0 && (hasKey(measured, e.A) || hasKey(measured, e.B)) {
			toMat = append(toMat, e)
		}
	}
	p.materializePending(toMat)
	p.out.Layers = append(p.out.Layers, l.Clone())

	ff := p.opts.FFTime
	if ff < 0 {
		ff = p.dev.DurFF
	}
	tau := l.Duration + ff // measurement + feed-forward idle window
	const nsToS = 1e-9
	var condLayer *circuit.Layer
	var zs []zCorr
	for _, e := range p.dev.AllCrosstalkEdges() {
		w := 2 * math.Pi * p.dev.ZZ[e] * nsToS
		if w == 0 {
			continue
		}
		ma, aOK := measured[e.A]
		mb, bOK := measured[e.B]
		switch {
		case aOK && bOK:
			// Both collapsed: pure phase, nothing to correct.
		case aOK || bOK:
			// One endpoint measured: the surviving error on the spectator is
			// Rz(w*tau*(z_m - 1)): zero for outcome 0, -2*w*tau for outcome
			// 1. Compensate with a conditional virtual Rz on the spectator.
			spec, cbit := e.B, ma
			if bOK {
				spec, cbit = e.A, mb
			}
			if p.isCollapsed(spec) {
				continue
			}
			if condLayer == nil {
				p.out.Layers = append(p.out.Layers, circuit.Layer{Kind: circuit.OneQubitLayer})
				condLayer = &p.out.Layers[len(p.out.Layers)-1]
			}
			// The correction is a conditional *virtual* Rz: diagonal, so it
			// commutes with the remaining idle evolution and can execute as
			// soon as the measurement result is available (Time 0, zero
			// duration).
			condLayer.Add(circuit.Instruction{
				Gate:   gates.RZ,
				Qubits: []int{spec},
				Params: []float64{2 * w * tau},
				Cond:   &circuit.Condition{Bit: cbit, Value: 1},
				Tag:    "ec",
			})
			p.stats.Conditional++
		default:
			if p.isCollapsed(e.A) || p.isCollapsed(e.B) {
				continue
			}
			// Both idle and unmeasured: the usual U11 accumulation over the
			// measurement window (the feed-forward window is accounted by
			// the following conditional layer's own toggling pass).
			p.comp2q[e] += w * l.Duration
			zs = append(zs, zCorr{q: e.A, errAngle: -w * l.Duration}, zCorr{q: e.B, errAngle: -w * l.Duration})
		}
	}
	p.emitZCorrections(zs)
	if p.collapsed == nil {
		p.collapsed = map[int]bool{}
	}
	for q := range measured {
		p.collapsed[q] = true
	}
	return nil
}

func hasKey(m map[int]int, k int) bool {
	_, ok := m[k]
	return ok
}
