package caec_test

import (
	"math"
	"math/rand"
	"testing"

	"casq/internal/caec"
	"casq/internal/circuit"
	"casq/internal/device"
	"casq/internal/gates"
	"casq/internal/linalg"
	"casq/internal/sched"
	"casq/internal/sim"
	"casq/internal/twirl"
)

// exactOpts materializes every pending compensation (threshold 0) so the
// coherent cancellation tests can assert exactness.
func exactOpts() caec.Options {
	o := caec.DefaultOptions()
	o.MaterializeMin = 0
	return o
}

func quietDevice(n int) *device.Device {
	opts := device.DefaultOptions()
	opts.DeltaMax = 0
	opts.QuasistaticSigma = 0
	opts.Err1Q = 0
	opts.Err2Q = 0
	opts.ReadoutErr = 0
	opts.T1Min, opts.T1Max = 1e12, 1e12
	opts.T2Factor = 2.0
	opts.RotaryResidual = 0
	opts.Dur1Q = 1e-6
	return device.NewLine("quiet", n, opts)
}

func coherent1() sim.Config {
	c := sim.CoherentOnly(1)
	c.Workers = 1
	return c
}

// fidelityToIdeal compiles nothing: it runs `noisy` under coherent-only
// noise and `ideal` with noise off, returning |<ideal|noisy>|^2.
func fidelityToIdeal(t *testing.T, dev *device.Device, noisy, ideal *circuit.Circuit) float64 {
	t.Helper()
	rn := sim.New(dev, coherent1())
	got, err := rn.FinalState(noisy)
	if err != nil {
		t.Fatal(err)
	}
	ri := sim.New(dev, sim.Ideal())
	want, err := ri.FinalState(ideal)
	if err != nil {
		t.Fatal(err)
	}
	return linalg.FidelityPure(got, want)
}

// buildLayered builds an Ising-like circuit: alternating ECR layers with
// idle boundary qubits and 1q X layers — a workload exercising idle-pair
// ZZ, spectator Z, and Stark errors.
func buildLayered(n, steps int) *circuit.Circuit {
	c := circuit.New(n, 0)
	prep := c.AddLayer(circuit.OneQubitLayer)
	for q := 0; q < n; q++ {
		prep.H(q)
	}
	for s := 0; s < steps; s++ {
		even := c.AddLayer(circuit.TwoQubitLayer)
		for q := 0; q+1 < n; q += 2 {
			even.ECR(q, q+1)
		}
		odd := c.AddLayer(circuit.TwoQubitLayer)
		for q := 1; q+1 < n; q += 2 {
			odd.ECR(q, q+1)
		}
		xs := c.AddLayer(circuit.OneQubitLayer)
		for q := 0; q < n; q++ {
			xs.X(q)
		}
	}
	return c
}

func TestCAECCancelsCoherentNoise(t *testing.T) {
	dev := quietDevice(4)
	base := buildLayered(4, 3)
	sched.Schedule(base, dev)

	bare := fidelityToIdeal(t, dev, base, base)
	if bare > 0.95 {
		t.Fatalf("coherent noise too weak to test suppression (bare fidelity %.4f)", bare)
	}

	compiled, stats, err := caec.Apply(base, dev, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	fixed := fidelityToIdeal(t, dev, compiled, base)
	if fixed < 0.9999 {
		t.Errorf("CA-EC should cancel coherent noise exactly: fidelity %.6f (bare %.4f, stats %+v)",
			fixed, bare, stats)
	}
	if stats.VirtualRZ == 0 {
		t.Error("expected virtual Rz corrections to be inserted")
	}
}

func TestCAECWithTwirling(t *testing.T) {
	dev := quietDevice(4)
	base := buildLayered(4, 2)
	rng := rand.New(rand.NewSource(5))
	inst, err := twirl.Instance(base, twirl.GatesOnly, rng)
	if err != nil {
		t.Fatal(err)
	}
	sched.Schedule(inst, dev)

	bare := fidelityToIdeal(t, dev, inst, base)
	compiled, stats, err := caec.Apply(inst, dev, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	fixed := fidelityToIdeal(t, dev, compiled, base)
	if fixed < 0.9999 {
		t.Errorf("CA-EC on twirled instance: fidelity %.6f (bare %.4f, stats %+v)", fixed, bare, stats)
	}
}

func TestCAECCaseIVAdjacentControls(t *testing.T) {
	// Case IV (paper Fig. 3f): two parallel ECRs with adjacent controls.
	// The echoes align, ZZ between the controls survives, DD cannot be
	// applied (the qubits are active) — only EC fixes it.
	opts := device.DefaultOptions()
	opts.DeltaMax = 0
	opts.QuasistaticSigma = 0
	opts.Err1Q = 0
	opts.Err2Q = 0
	opts.ReadoutErr = 0
	opts.T1Min, opts.T1Max = 1e12, 1e12
	opts.T2Factor = 2.0
	opts.RotaryResidual = 0
	opts.Dur1Q = 1e-6
	// Line of 4 with controls 1 and 2 adjacent: gates (1->0) and (2->3).
	edges := []device.Directed{{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	dev := device.NewSynthetic("caseiv", 4, edges, nil, opts)

	build := func(steps int) *circuit.Circuit {
		c := circuit.New(4, 0)
		prep := c.AddLayer(circuit.OneQubitLayer)
		for q := 0; q < 4; q++ {
			prep.H(q)
		}
		for s := 0; s < steps; s++ {
			l := c.AddLayer(circuit.TwoQubitLayer)
			l.ECR(1, 0)
			l.ECR(2, 3)
		}
		return c
	}
	base := build(4)
	sched.Schedule(base, dev)

	bare := fidelityToIdeal(t, dev, base, base)
	if bare > 0.97 {
		t.Fatalf("ctrl-ctrl ZZ should hurt: bare fidelity %.4f", bare)
	}
	compiled, stats, err := caec.Apply(base, dev, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.InsertedRZZ == 0 {
		t.Errorf("expected materialized RZZ corrections for ctrl-ctrl ZZ, stats %+v", stats)
	}
	fixed := fidelityToIdeal(t, dev, compiled, base)
	if fixed < 0.999 {
		t.Errorf("CA-EC should suppress ctrl-ctrl ZZ: fidelity %.6f (bare %.4f)", fixed, bare)
	}
}

func TestCAECAbsorbsIntoUcan(t *testing.T) {
	// Heisenberg-style workload: idle-pair errors absorbed into adjacent
	// Ucan gates at zero cost (no materialized RZZ on gate edges).
	dev := quietDevice(6)
	c := circuit.New(6, 0)
	prep := c.AddLayer(circuit.OneQubitLayer)
	prep.X(0)
	prep.H(4)
	prep.H(5)
	a, b, g := -0.2, -0.2, -0.2
	for s := 0; s < 3; s++ {
		// Layer A: qubits 4 and 5 idle side by side, accumulating ZZ.
		l1 := c.AddLayer(circuit.TwoQubitLayer)
		l1.Ucan(0, 1, a, b, g)
		l1.Ucan(2, 3, a, b, g)
		// Layer B: a Ucan on the formerly idle pair absorbs the pending ZZ.
		l2 := c.AddLayer(circuit.TwoQubitLayer)
		l2.Ucan(1, 2, a, b, g)
		l2.Ucan(4, 5, a, b, g)
	}
	sched.Schedule(c, dev)

	bare := fidelityToIdeal(t, dev, c, c)
	compiled, stats, err := caec.Apply(c, dev, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.AbsorbedUcan == 0 {
		t.Errorf("expected ZZ absorption into Ucan, stats %+v", stats)
	}
	fixed := fidelityToIdeal(t, dev, compiled, c)
	if fixed < 0.9999 {
		t.Errorf("CA-EC with Ucan absorption: fidelity %.6f (bare %.4f, stats %+v)", fixed, bare, stats)
	}
}

func TestCAECDynamicCircuit(t *testing.T) {
	// Mid-circuit measurement with feed-forward (paper Fig. 9): the ZZ
	// between the measured aux and its idle data spectator is compensated
	// by a measurement-conditioned virtual Rz.
	dev := quietDevice(3)
	build := func() *circuit.Circuit {
		c := circuit.New(3, 1)
		c.AddLayer(circuit.OneQubitLayer).H(0).H(2)
		c.AddLayer(circuit.TwoQubitLayer).CX(0, 1)
		c.AddLayer(circuit.TwoQubitLayer).CX(2, 1)
		c.AddLayer(circuit.MeasureLayer).Measure(1, 0)
		ff := c.AddLayer(circuit.OneQubitLayer)
		ff.Add(circuit.Instruction{
			Gate: gates.XGate, Qubits: []int{2},
			Cond: &circuit.Condition{Bit: 0, Value: 1},
			Time: dev.DurFF,
		})
		return c
	}

	// Ideal Bell state between 0 and 2 (q1 collapsed): compute the ideal
	// final state by running the same circuit noiselessly with a fixed
	// outcome... instead verify via Bell correlations below.
	noisy := build()
	sched.Schedule(noisy, dev)
	compiled, stats, err := caec.Apply(noisy, dev, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conditional == 0 {
		t.Errorf("expected conditional corrections, stats %+v", stats)
	}

	bell := func(c *circuit.Circuit, cfg sim.Config) float64 {
		r := sim.New(dev, cfg)
		// <X0 X2> + <Z0 Z2> = 2 for the Phi+ Bell state.
		vals, err := r.Expectations(c, []sim.ObsSpec{
			{0: 'X', 2: 'X'}, {0: 'Z', 2: 'Z'},
		})
		if err != nil {
			t.Fatal(err)
		}
		return (vals[0] + vals[1]) / 2
	}
	cohCfg := sim.CoherentOnly(64)
	cohCfg.Seed = 9
	bare := bell(noisy, cohCfg)
	fixed := bell(compiled, cohCfg)
	if fixed < bare+0.02 {
		t.Errorf("CA-EC should improve Bell correlations: bare %.4f fixed %.4f", bare, fixed)
	}
	if fixed < 0.995 {
		t.Errorf("CA-EC Bell correlation too low: %.4f", fixed)
	}
}

func TestCAECMinAngleSkipsNoise(t *testing.T) {
	dev := quietDevice(2)
	c := circuit.New(2, 0)
	c.AddLayer(circuit.OneQubitLayer).H(0).H(1)
	l := c.AddLayer(circuit.TwoQubitLayer)
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{0}, Params: []float64{500}})
	l.Add(circuit.Instruction{Gate: gates.Delay, Qubits: []int{1}, Params: []float64{500}})
	sched.Schedule(c, dev)

	opts := caec.DefaultOptions()
	opts.MinAngle = math.Pi // absurdly high: nothing should be compensated
	compiled, stats, err := caec.Apply(c, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualRZ != 0 || stats.InsertedRZZ != 0 {
		t.Errorf("nothing should pass the MinAngle filter, stats %+v", stats)
	}
	if compiled.Depth() != c.Depth() {
		t.Errorf("no layers should have been inserted")
	}
}
