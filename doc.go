// Package casq (Context-Aware Suppression of correlated noise in Quantum
// circuits) is a Go reproduction of "Suppressing Correlated Noise in Quantum
// Computers via Context-Aware Compiling" (Seif et al., ISCA 2024,
// arXiv:2403.06852).
//
// The public API is built around four composable subsystems:
//
//   - a pass pipeline: every compiler transformation (Pauli twirling,
//     scheduling, Context-Aware Dynamical Decoupling — Algorithm 1 — and
//     Context-Aware Error Compensation — Algorithm 2) is a Pass, and a
//     Pipeline composes them in any order. The paper's six benchmarked
//     strategies (Bare … Combined) are canned pipelines via Build; custom
//     orderings (EC before DD, twirl-free DD ablations, user-defined
//     passes) compose with NewPipeline;
//   - a concurrent executor: NewExecutor fans the twirl instances of a job
//     out across a worker pool with per-instance derived seeds and
//     aggregates in instance order, so results are bit-identical for any
//     worker count and the full shot budget is preserved. The
//     ExecOptions.Workers budget is shared between instance-level fan-out
//     and the simulator's shot-level fan-out (a single-instance job
//     parallelizes over shots instead of running serially; see DESIGN.md,
//     "Unified worker budget");
//   - a backend registry with context-aware placement: Backends names
//     full-scale calibrated devices (line/ring/grid families and the
//     parametric heavy-hex lattice up to the 127-qubit Eagle geometry),
//     each exportable as a bit-stable JSON snapshot (SnapshotDevice /
//     DeviceFromSnapshot) and driftable for scenario sweeps
//     (PerturbDevice). ChooseLayout embeds a circuit into a backend on
//     the subregion with the least predicted coherent error — scored by
//     the same toggling-frame integrals CA-EC compensates — and
//     LayoutPass/RoutePass compose the placement and SWAP-routing stages
//     into any pipeline;
//   - a pluggable engine axis: every execution can run on the exact noisy
//     statevector kernel or on the stabilizer/Pauli-frame engine
//     (NewStabEngine), which derives stochastic Pauli channels from the
//     device calibration via the Pauli-twirling approximation and
//     simulates full-scale twirled circuits — the entire 127-qubit Eagle
//     lattice — in O(shots * gates * n). ExecOptions.Engine selects
//     statevector | stab | auto (auto dispatches per instance when the
//     compiled circuit is twirl-representable, see StabSupports);
//   - an experiment service: every paper figure is declared in a catalog
//     (ExperimentCatalog) with its parameter axes; OpenResultStore +
//     NewFigureCache answer repeated figure requests from a
//     content-addressed two-tier cache, NewSweepRunner expands option
//     grids into checkpointed batch runs that resume after interruption,
//     and NewServer exposes catalog, figures, and sweeps over HTTP (the
//     `casq serve` subcommand).
//
// A minimal end-to-end run:
//
//	dev := casq.NewLineDevice("dev", 4, casq.DefaultDeviceOptions())
//	pl := casq.Build(casq.Combined())
//	ex := casq.NewExecutor(dev, pl)
//	vals, err := ex.Expectations(context.Background(), circ,
//	    []casq.Observable{{0: 'X'}},
//	    casq.ExecOptions{Instances: 8, Seed: 7, Cfg: casq.DefaultSimConfig()})
//
// And a minimal cached figure service:
//
//	st, _ := casq.OpenResultStore("casq-store", 0)
//	cache := casq.NewFigureCache(st)
//	data, hit, err := cache.Figure(casq.SweepCell{ID: "fig6",
//	    Opts: casq.FastExperimentOptions()}) // repeats: hit == true, same bytes
//
// Beneath the API sit, from scratch and stdlib-only: a layered
// quantum-circuit IR with scheduling and a gate library (ECR, CX, RZZ, the
// canonical gate Ucan, ZXZXZ Euler decomposition); a device model with the
// calibration data the paper's passes consume (always-on ZZ, Stark shifts,
// charge parity, NNN collision edges, coherence times, gate
// errors/durations); a trajectory statevector simulator substituting for
// the paper's IBM hardware, with the echoed-CR pulse context modeled so DD
// alignment effects emerge from the dynamics; and experiment harnesses
// regenerating every figure and table of the paper's evaluation
// (internal/experiments, cmd/experiments).
//
// The pre-redesign compiler API (NewCompiler, Compiler.Expectations,
// Compiler.Counts) remains as thin wrappers over the pipeline + executor.
package casq
